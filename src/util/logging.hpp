// Lightweight leveled logging for the AVF framework.
//
// The framework runs inside a deterministic discrete-event simulator, so log
// lines carry the *simulated* time when the caller provides one.  Logging is
// globally filterable by level and is safe to leave in hot paths: a disabled
// level costs one branch.
#pragma once

#include "util/annotations.hpp"
#include "util/fmt.hpp"
#include "util/mutex.hpp"
#include <iosfwd>
#include <string>
#include <string_view>

namespace avf::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration.  Each simulator stays single-threaded, but the
/// parallel profiling driver runs many simulators at once, so write() takes
/// a mutex (lines from concurrent workers interleave whole, never mixed).
/// The line is formatted *before* the lock — the critical section is just
/// the final stream insert, so concurrent workers serialize on the write,
/// not on each other's formatting.  Level is still expected to be
/// configured once up front, before any worker threads exist.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output (used by tests to capture log lines). Pass nullptr to
  /// restore stderr.
  void set_sink(std::ostream* sink) AVF_EXCLUDES(write_mutex_);

  void write(LogLevel level, std::string_view component, double sim_time,
             std::string_view message) AVF_EXCLUDES(write_mutex_);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ AVF_GUARDED_BY(write_mutex_) = nullptr;
  Mutex write_mutex_;
};

/// Human-readable level tag ("TRACE", "INFO", ...).
std::string_view level_name(LogLevel level);

namespace detail {
template <typename... Args>
void log(LogLevel level, std::string_view component, double sim_time,
         std::string_view fmt, Args&&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.write(level, component, sim_time,
               avf::util::format(fmt, std::forward<Args>(args)...));
}
}  // namespace detail

template <typename... Args>
void log_trace(std::string_view component, double sim_time,
               std::string_view fmt, Args&&... args) {
  detail::log(LogLevel::kTrace, component, sim_time, fmt,
              std::forward<Args>(args)...);
}

template <typename... Args>
void log_debug(std::string_view component, double sim_time,
               std::string_view fmt, Args&&... args) {
  detail::log(LogLevel::kDebug, component, sim_time, fmt,
              std::forward<Args>(args)...);
}

template <typename... Args>
void log_info(std::string_view component, double sim_time,
              std::string_view fmt, Args&&... args) {
  detail::log(LogLevel::kInfo, component, sim_time, fmt,
              std::forward<Args>(args)...);
}

template <typename... Args>
void log_warn(std::string_view component, double sim_time,
              std::string_view fmt, Args&&... args) {
  detail::log(LogLevel::kWarn, component, sim_time, fmt,
              std::forward<Args>(args)...);
}

template <typename... Args>
void log_error(std::string_view component, double sim_time,
               std::string_view fmt, Args&&... args) {
  detail::log(LogLevel::kError, component, sim_time, fmt,
              std::forward<Args>(args)...);
}

}  // namespace avf::util
