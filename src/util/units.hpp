// Unit helpers.  The simulator measures time in seconds (double), CPU work in
// "ops" (a 450 MHz-class host executes 450e6 ops/s), data in bytes, and
// bandwidth in bytes/second.  These helpers keep call sites legible and match
// the units the paper reports (KBps, MBps, ms).
#pragma once

namespace avf::util {

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;

/// Kilobytes-per-second as used in the paper (1 KBps = 1000 bytes/s).
constexpr double kbps(double v) { return v * 1e3; }
constexpr double mbps(double v) { return v * 1e6; }

constexpr double kilobytes(double v) { return v * 1e3; }
constexpr double megabytes(double v) { return v * 1e6; }

constexpr double milliseconds(double v) { return v * 1e-3; }

/// Mega-operations per second; host CPU speeds are expressed with this.
constexpr double mops(double v) { return v * 1e6; }

}  // namespace avf::util
