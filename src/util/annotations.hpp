// Clang Thread Safety Analysis annotations for the concurrency contract.
//
// The repo's determinism guarantee (byte-identical traces and fingerprints
// at any thread count) leans on a small set of mutex-guarded shared
// structures: the thread-pool deques, the process-wide viz caches, the
// logger sink, the viz image/pyramid memos, and the prediction cache.
// Until now the lock discipline around them was enforced only dynamically
// (the TSan CI tier); these macros move the contract to compile time.
//
// Under clang, `-Wthread-safety -Wthread-safety-beta -Werror=thread-safety`
// turns every unannotated cross-thread access into a build error: a field
// marked AVF_GUARDED_BY(mu) may only be touched while `mu` is held, a
// method marked AVF_REQUIRES(mu) may only be called with `mu` held, and a
// method marked AVF_EXCLUDES(mu) may not be called while holding it (it
// acquires the lock itself).  Off clang (gcc builds, which is what the
// tier-1 trees use) every macro expands to nothing, so the annotations are
// zero-cost documentation there — the CI `tier1-tsa` job is the gate.
//
// Conventions (DESIGN.md §"static concurrency contract"):
//   - data:    AVF_GUARDED_BY(mu) on every field a mutex protects;
//              AVF_PT_GUARDED_BY(mu) when the *pointee* is what's guarded.
//   - private helpers that assume the caller already locked:
//              AVF_REQUIRES(mu).
//   - public self-locking entry points: AVF_EXCLUDES(mu), so a caller
//     that already holds the lock is rejected (no silent recursion).
//   - condition-variable predicates and other spots TSA provably cannot
//     follow: AVF_NO_THREAD_SAFETY_ANALYSIS, with a comment saying why.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AVF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AVF_THREAD_ANNOTATION
#define AVF_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// A type that models a capability (our util::Mutex).
#define AVF_CAPABILITY(name) AVF_THREAD_ANNOTATION(capability(name))

/// An RAII type that acquires a capability at construction and releases it
/// at destruction (our util::MutexLock).
#define AVF_SCOPED_CAPABILITY AVF_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding `mu`.
#define AVF_GUARDED_BY(mu) AVF_THREAD_ANNOTATION(guarded_by(mu))

/// Pointer field whose *pointee* may only be accessed while holding `mu`.
#define AVF_PT_GUARDED_BY(mu) AVF_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define AVF_REQUIRES(...) \
  AVF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define AVF_ACQUIRE(...) \
  AVF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define AVF_RELEASE(...) \
  AVF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define AVF_TRY_ACQUIRE(result, ...) \
  AVF_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities (it
/// acquires them itself; calling with them held would self-deadlock).
#define AVF_EXCLUDES(...) AVF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define AVF_RETURN_CAPABILITY(x) AVF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code TSA cannot follow (condition-variable predicates,
/// init-before-threads patterns).  Every use carries a justifying comment.
#define AVF_NO_THREAD_SAFETY_ANALYSIS \
  AVF_THREAD_ANNOTATION(no_thread_safety_analysis)
