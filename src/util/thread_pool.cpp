#include "util/thread_pool.hpp"

#include <atomic>

namespace avf::util {

namespace {
// Which pool (if any) the current thread belongs to, for current_worker().
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;
}  // namespace

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i](std::stop_token token) { worker_loop(token, i); });
  }
}

ThreadPool::~ThreadPool() {
  request_stop();
  // threads_ is the last member: its destruction joins every worker (each
  // drains remaining tasks first), then the deques are torn down.
}

std::size_t ThreadPool::current_worker() const {
  return tls_pool == this ? tls_index : size();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target = 0;
  bool run_inline = false;
  {
    MutexLock lock(wake_mutex_);
    if (stopping_) {
      // Workers may already have drained and exited; run inline so blocked
      // parallel_for callers still see every wrapper complete.
      run_inline = true;
    } else {
      // Prefer the calling worker's own deque (LIFO locality); other
      // threads spread round-robin.
      std::size_t self = current_worker();
      target =
          self < workers_.size() ? self : next_queue_++ % workers_.size();
      ++unclaimed_;
    }
  }
  if (run_inline) {
    task();
    return;
  }
  {
    Worker& w = *workers_[target];
    MutexLock lock(w.mutex);
    w.queue.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  bool found = false;
  {
    // Own deque, newest first.
    Worker& w = *workers_[self];
    MutexLock lock(w.mutex);
    if (!w.queue.empty()) {
      task = std::move(w.queue.back());
      w.queue.pop_back();
      found = true;
    }
  }
  for (std::size_t k = 1; !found && k < workers_.size(); ++k) {
    // Steal oldest-first from the other deques.
    Worker& w = *workers_[(self + k) % workers_.size()];
    MutexLock lock(w.mutex);
    if (!w.queue.empty()) {
      task = std::move(w.queue.front());
      w.queue.pop_front();
      found = true;
    }
  }
  if (found) {
    MutexLock lock(wake_mutex_);
    --unclaimed_;
  }
  return found;
}

void ThreadPool::worker_loop(std::stop_token token, std::size_t self) {
  tls_pool = this;
  tls_index = self;
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    MutexLock lock(wake_mutex_);
    if (unclaimed_ > 0) continue;  // raced with a submit; retry the deques
    if (token.stop_requested()) break;
    // Plain wait loop (no predicate lambda) so the guarded `unclaimed_`
    // reads stay visible to thread-safety analysis: the capability is held
    // across wait() by construction of MutexLock.  A stop cannot be missed:
    // request_stop() flips stopping_ under wake_mutex_ and requests every
    // token *before* its notify_all, so a woken waiter always observes it.
    while (unclaimed_ == 0 && !token.stop_requested()) wake_.wait(lock);
    if (token.stop_requested() && unclaimed_ == 0) break;
  }
  // Stop requested: drain leftover tasks (payloads skip themselves when
  // they see the stop) so no parallel_for caller waits forever.
  while (try_pop(self, task)) {
    task();
    task = nullptr;
  }
}

void ThreadPool::request_stop() {
  {
    MutexLock lock(wake_mutex_);
    stopping_ = true;
  }
  for (std::jthread& t : threads_) t.request_stop();
  wake_.notify_all();
}

bool ThreadPool::stop_requested() const { return stopping_.load(); }

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (size() == 1 && current_worker() == size()) {
    // Single worker and a non-worker caller: run inline, same semantics
    // (lowest-index exception, stop check between indices), no wakeups.
    for (std::size_t i = 0; i < count; ++i) {
      if (stop_requested()) throw ThreadPoolStopped();
      fn(i);
    }
    return;
  }

  // The state lives on this frame and is destroyed only here: the wait
  // below cannot return before every wrapper has made its final state
  // access (the completion notify happens with state.mutex held, so a
  // worker past its notify never touches the state again).  Keeping
  // destruction on the calling thread also keeps the buffered
  // exception_ptr's release thread-deterministic.
  struct State {
    Mutex mutex;
    std::condition_variable_any cv;
    // wrappers finished (payload run or skipped) / payloads actually run
    std::size_t completed AVF_GUARDED_BY(mutex) = 0;
    std::size_t executed AVF_GUARDED_BY(mutex) = 0;
    std::size_t err_index AVF_GUARDED_BY(mutex);
    std::exception_ptr err AVF_GUARDED_BY(mutex);
  };
  State state;
  {
    MutexLock lock(state.mutex);
    state.err_index = count;
  }

  for (std::size_t i = 0; i < count; ++i) {
    submit([this, &state, &fn, count, i] {
      std::exception_ptr err;
      bool ran = false;
      if (!stop_requested()) {
        ran = true;
        try {
          fn(i);
        } catch (...) {
          err = std::current_exception();
        }
      }
      MutexLock lock(state.mutex);
      if (ran) ++state.executed;
      if (err && i < state.err_index) {
        state.err_index = i;
        state.err = std::move(err);
      }
      if (++state.completed == count) state.cv.notify_all();
    });
  }

  MutexLock lock(state.mutex);
  while (state.completed != count) state.cv.wait(lock);
  if (state.err) std::rethrow_exception(state.err);
  if (state.executed != count) throw ThreadPoolStopped();
}

}  // namespace avf::util
