#include "sim/link.hpp"

#include <stdexcept>
#include <utility>

namespace avf::sim {

Link::Link(Simulator& sim, std::string name, double bandwidth_bps,
           double latency_s)
    : sim_(sim),
      name_(std::move(name)),
      latency_(latency_s),
      forward_(sim, name_ + ".fwd", bandwidth_bps),
      backward_(sim, name_ + ".bwd", bandwidth_bps) {
  if (latency_s < 0.0) {
    throw std::invalid_argument("link latency must be >= 0");
  }
}

void Link::set_bandwidth(double bps) {
  forward_.set_capacity(bps);
  backward_.set_capacity(bps);
}

Task<> Endpoint::send(Message msg) {
  msg.sent_at = sim_.now();
  std::size_t size = msg.wire_size();
  co_await out_->consume(static_cast<double>(size), slot_, owner_);
  bytes_sent_ += size;
  Endpoint* peer = peer_;
  // Deliver one propagation delay after the last byte leaves.  Captured by
  // value; the event owns the message until delivery.
  sim_.schedule(latency_, [peer, m = std::move(msg)]() mutable {
    peer->deliver(std::move(m));
  });
}

void Endpoint::deliver(Message msg) {
  if (fault_) {
    if (std::optional<DeliveryFault> f = fault_(msg)) {
      if (f->drop) {
        ++deliveries_dropped_;
        return;
      }
      if (f->extra_delay > 0.0) {
        ++deliveries_delayed_;
        // Deposit directly after the hold — the hook must not be consulted
        // twice for the same message.
        sim_.schedule(f->extra_delay, [this, m = std::move(msg)]() mutable {
          deposit(std::move(m));
        });
        return;
      }
    }
  }
  deposit(std::move(msg));
}

void Endpoint::deposit(Message msg) {
  msg.delivered_at = sim_.now();
  bytes_received_ += msg.wire_size();
  inbox_.push(std::move(msg));
}

void Endpoint::set_share_slot(ShareSlotPtr slot) {
  if (!slot) throw std::invalid_argument("endpoint share slot must not be null");
  slot_ = std::move(slot);
  out_->reallocate();
}

Channel::Channel(Link& link)
    : a_(new Endpoint(link.simulator(), link.forward(), link.latency())),
      b_(new Endpoint(link.simulator(), link.backward(), link.latency())) {
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

}  // namespace avf::sim
