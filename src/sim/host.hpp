// A simulated host: a named machine with a CPU (fluid resource in ops/s) and
// physical memory.  Host speeds are quoted in ops/s; the repro convention is
// "a 450 MHz-class Pentium II executes 450e6 ops/s", so the paper's machines
// map to speeds 450e6 / 333e6 / 200e6 (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/fluid_resource.hpp"
#include "sim/memory.hpp"
#include "sim/simulator.hpp"

namespace avf::sim {

class Host {
 public:
  Host(Simulator& sim, std::string name, double cpu_ops_per_sec,
       std::uint64_t memory_bytes);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }

  FluidResource& cpu() { return cpu_; }
  const FluidResource& cpu() const { return cpu_; }
  MemoryResource& memory() { return memory_; }
  const MemoryResource& memory() const { return memory_; }

  /// Nominal CPU speed (ops/s) — the capacity of the cpu() resource.
  double cpu_speed() const { return cpu_.capacity(); }

 private:
  Simulator& sim_;
  std::string name_;
  FluidResource cpu_;
  MemoryResource memory_;
};

}  // namespace avf::sim
