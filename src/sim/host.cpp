#include "sim/host.hpp"

namespace avf::sim {

Host::Host(Simulator& sim, std::string name, double cpu_ops_per_sec,
           std::uint64_t memory_bytes)
    : sim_(sim),
      name_(name),
      cpu_(sim, name + ".cpu", cpu_ops_per_sec),
      memory_(name + ".mem", memory_bytes) {}

}  // namespace avf::sim
