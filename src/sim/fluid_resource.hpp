// Fluid-flow shared resource with per-consumer caps.
//
// This is the single rate-sharing engine behind both CPUs (capacity in ops/s)
// and network links (capacity in bytes/s).  Concurrent requests share the
// capacity by weighted max-min fairness, with each request additionally
// limited to `slot->cap * capacity` — the sandbox's resource limit.  The
// semantics match the paper's virtual execution environment: when the sum of
// caps is below 1, every consumer receives *exactly* its cap (under-loaded
// guarantee, §5.1); when over-subscribed, capacity is split proportionally to
// weights below the caps.
//
// Requests progress as fluid flows and the engine is *hybrid*:
//
//  - Below `sparse_threshold()` concurrent flows it runs the dense engine:
//    incremental O(1) fast paths for the under-loaded capped regime and an
//    explicit water-filling pass otherwise, bit-for-bit identical to the
//    original implementation (existing traces at <= 128 clients are
//    preserved byte-for-byte).
//
//  - At or above the threshold it migrates to the sparse engine, which keeps
//    the water-filling solution *incrementally*.  Flows are bucketed by
//    which constraint binds them: cap-limited flows sit in an ordered set
//    keyed by ratio = ncap/weight (ncap = clamp(cap,0,1)); fair-share
//    flows progress in GPS virtual time V with dV/dt = level * capacity, so
//    a fair flow's finish point F = V_entry + remaining/weight is fixed on
//    entry and only the *earliest* F needs a real simulator event.  The
//    normalized water level mu = (1 - sum ncap_capped) / sum w_fair is
//    maintained across arrivals, departures and capacity changes by moving
//    only the flows that cross the capped/fair boundary (each move strictly
//    raises mu, so rebalancing terminates); everything else is untouched.
//    An arrival or departure is O(log N + crossings) instead of O(N), and
//    a capacity change is O(capped flows) with no boundary motion at all
//    (the level is capacity-invariant by construction).  Sparse-mode rate
//    assignments are the same max-min solution, equal to the dense pass up
//    to floating-point association; the engine never switches modes
//    mid-population (sparse resets to dense only when the last flow
//    leaves), so every run remains exactly deterministic.
//
// Served-unit accounting uses Neumaier-compensated accumulation so the
// per-reschedule credit deltas of long churny runs (10k+ flows) do not
// drift: total_served() stays within ulp-scale error of the sum of
// served(owner) over all owners.
#pragma once

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <list>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace avf::sim {

class FluidResource {
 public:
  /// Flow count at which the engine migrates dense -> sparse.  High enough
  /// that every existing workload (and trace) below it is untouched.
  static constexpr std::size_t kDefaultSparseThreshold = 384;

  /// `capacity` in units/second (> 0).
  FluidResource(Simulator& sim, std::string name, double capacity);

  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }

  /// Change total capacity; in-flight requests are re-allocated.
  void set_capacity(double capacity);

  /// Must be called after mutating any ShareSlot used by an in-flight
  /// request (the resource cannot observe the change on its own).  Always a
  /// full water-filling pass — slot mutations can change any flow's rate.
  void reallocate();

  /// Narrow variant of reallocate() for when exactly one slot was mutated:
  /// if no in-flight request uses `slot` this is an O(1) no-op (counted in
  /// noop_slot_reallocs()), otherwise it falls back to a full pass.  The
  /// sandbox cap plumbing calls this per endpoint, which turns the
  /// attach-time cap storm from O(endpoints^2) passes into O(endpoints).
  void slot_changed(const ShareSlotPtr& slot);

  /// Awaitable: consume `amount` units under the entitlement in `slot`.
  /// Completes when the full amount has been served.  `owner` attributes the
  /// consumption for accounting; pass kNoOwner to skip attribution.
  ///
  ///   co_await host.cpu().consume(1e6, my_slot, my_id);
  auto consume(double amount, ShareSlotPtr slot, OwnerId owner = kNoOwner) {
    struct Awaiter {
      FluidResource& res;
      double amount;
      ShareSlotPtr slot;
      OwnerId owner;
      bool await_ready() const noexcept { return amount <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        res.add_request(amount, std::move(slot), owner, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, amount, std::move(slot), owner};
  }

  /// Cumulative units served to `owner` up to the current simulated time
  /// (includes partial progress of in-flight requests).
  double served(OwnerId owner) const;
  /// Cumulative units served to all owners.
  double total_served() const;

  /// Number of in-flight requests.
  std::size_t active_requests() const { return requests_.size(); }

  /// Whether `owner` has a request in flight.
  bool has_request(OwnerId owner) const;

  /// Current aggregate allocated rate (units/s); <= capacity.
  double allocated_rate() const;

  /// Whether the sparse incremental engine is currently driving allocation.
  bool sparse_active() const { return mode_ == Mode::kSparse; }
  std::size_t sparse_threshold() const { return sparse_threshold_; }
  /// Tests only: takes effect on the next arrival (an active sparse engine
  /// stays sparse until its population drains).
  void set_sparse_threshold(std::size_t n) { sparse_threshold_ = n; }

  // -- reallocation statistics (micro_viz_scale gates on these) -----------
  /// Full water-filling passes / rebuilds (arrival/departure outside every
  /// incremental path, capacity changes, explicit reallocate() calls).
  std::uint64_t full_reallocs() const { return full_reallocs_; }
  /// O(1) arrivals/departures that provably left every other flow's rate
  /// unchanged (the under-loaded capped regime, dense engine).
  std::uint64_t fast_reallocs() const { return fast_reallocs_; }
  /// Per-flow rate assignments where the rate actually changed (each one
  /// reschedules that flow's completion event).
  std::uint64_t rate_rescales() const { return rate_rescales_; }
  /// Flows inspected by a full pass whose rate was bit-identical — their
  /// completion events were left untouched.  The previous implementation
  /// rescheduled these too.
  std::uint64_t rate_keeps() const { return rate_keeps_; }
  /// Other in-flight flows present during fast-path events — flows the
  /// previous O(N)-per-event implementation would have re-credited and
  /// rescheduled.
  std::uint64_t flows_skipped() const { return flows_skipped_; }
  /// Dense -> sparse engine migrations.
  std::uint64_t sparse_activations() const { return sparse_activations_; }
  /// Arrivals/departures the sparse engine absorbed incrementally (no full
  /// pass over the population).
  std::uint64_t sparse_events() const { return sparse_events_; }
  /// Flows moved across the capped/fair boundary by sparse rebalancing —
  /// the only flows an incremental event touches.
  std::uint64_t boundary_crossings() const { return boundary_crossings_; }
  /// Water-level (mu) recomputations that produced a new level.
  std::uint64_t level_updates() const { return level_updates_; }
  /// slot_changed() calls that were O(1) no-ops (slot had no active flows).
  std::uint64_t noop_slot_reallocs() const { return noop_slot_reallocs_; }

 private:
  /// Neumaier-compensated accumulator: add() folds the rounding error of
  /// each += into a running compensation term, value() returns sum + comp.
  struct CompensatedSum {
    double sum = 0.0;
    double comp = 0.0;
    void add(double x) {
      double t = sum + x;
      if (std::abs(sum) >= std::abs(x)) {
        comp += (sum - t) + x;
      } else {
        comp += (x - t) + sum;
      }
      sum = t;
    }
    void sub(double x) { add(-x); }
    double value() const { return sum + comp; }
    void reset() {
      sum = 0.0;
      comp = 0.0;
    }
  };

  enum class Mode { kDense, kSparse };

  struct Request {
    double remaining;
    double rate = 0.0;        // current allocation, units/s (0 while fair)
    SimTime credited_at;      // progress has been credited up to here
    double cap_rate = 0.0;    // clamp(slot->cap, 0, 1) * capacity at last alloc
    ShareSlotPtr slot;
    OwnerId owner;
    std::coroutine_handle<> waiter;
    EventHandle completion;
    // -- sparse-engine state --------------------------------------------
    std::uint64_t id = 0;    // arrival order; deterministic set tie-break
    double ncap = 0.0;       // clamp(slot->cap, 0, 1) snapshot
    double weight = 0.0;     // slot->weight snapshot (sum consistency)
    double ratio = 0.0;      // ncap / weight
    double vfinish = 0.0;    // virtual time at which a fair flow completes
    double vcredit = 0.0;    // virtual time progress was credited up to
    bool fair = false;       // fair-share-limited (else cap-limited/dense)
  };
  using RequestIt = std::list<Request>::iterator;
  /// (ratio|vfinish, id) — id breaks ties deterministically.
  using FlowKey = std::pair<double, std::uint64_t>;

  void add_request(double amount, ShareSlotPtr slot, OwnerId owner,
                   std::coroutine_handle<> h);
  /// Assign id and register in the lookup indexes.
  void register_request(RequestIt it);
  /// Remove from the lookup indexes and the request list (not from the
  /// sparse boundary sets — callers own those).
  RequestIt erase_request(RequestIt it);
  /// Credit progress since `credited_at` at the request's current rate.
  void credit(Request& r, SimTime now);
  /// Per-owner + total served accumulation (Neumaier-compensated).
  void add_served(OwnerId owner, double delta);
  /// In-flight progress since the request's credit point, non-mutating.
  double inflight_progress(const Request& r, SimTime now) const;
  /// Completion criterion shared by the event path and full passes: either
  /// the residual is below epsilon or so small that the completion delay
  /// would not advance the clock (then the event would respin forever).
  bool finished(const Request& r, SimTime now) const;
  /// (Re)schedule the request's own completion event from its current
  /// remaining/rate; cancels any previous event.
  void schedule_completion(RequestIt it);
  /// A request's own completion event fired (capped flows, both modes).
  void on_completion(RequestIt it);
  /// Resume the waiter and drop the request; O(1) when every remaining flow
  /// is at its cap (nobody's rate can rise above it), full pass otherwise.
  void remove_request(RequestIt it);
  /// Dense engine: credit everyone, sweep finished requests, rerun
  /// water-filling, and reschedule exactly the flows whose rate changed.
  void full_reallocate();

  // -- sparse engine ------------------------------------------------------
  /// Advance GPS virtual time to `now` at the current level.  Must run
  /// before any event mutates the level, the capacity, or the population.
  void advance_virtual(SimTime now);
  /// Normalized water level mu = (1 - S_ncap) / W_fair, clamped >= 0.
  double level() const;
  /// Credit a fair flow up to the (already advanced) virtual time.
  void credit_fair(Request& r);
  void demote_to_capped(RequestIt it);
  void promote_to_fair(RequestIt it);
  /// Move flows across the capped/fair boundary until the partition is
  /// consistent with its own level.  Each move strictly raises mu, so this
  /// terminates; the iteration guard is pure paranoia.
  void sparse_rebalance();
  /// Recompute mu and (re)schedule the single fair-head completion event.
  void sparse_finalize();
  /// The fair-head event fired: complete every fair flow whose virtual
  /// finish has been reached.
  void on_fair_head();
  void sparse_add(double amount, ShareSlotPtr slot, OwnerId owner,
                  std::coroutine_handle<> h);
  /// A capped flow's own completion event fired in sparse mode.
  void sparse_remove_capped(RequestIt it);
  void sparse_set_capacity(double capacity);
  /// Credit + sweep + re-derive the whole partition (slot mutations).
  void sparse_rebuild();
  /// Re-snapshot every flow, place all fair, rebalance, finalize.  Callers
  /// have already credited and swept.
  void rebuild_sparse_partition();
  /// Dense-engine full pass, then adopt the sparse representation.
  void migrate_to_sparse();
  /// Population drained: drop sparse state, next wave starts dense.
  void reset_sparse_to_dense();

  Simulator& sim_;
  std::string name_;
  double capacity_;
  std::list<Request> requests_;
  Mode mode_ = Mode::kDense;
  std::size_t sparse_threshold_ = kDefaultSparseThreshold;

  // -- dense-engine state ---------------------------------------------------
  /// Sum of the active requests' cap_rate values, maintained incrementally.
  double cap_rate_sum_ = 0.0;
  /// True iff every active flow's rate equals its cap rate (the under-loaded
  /// guarantee regime): arrivals and departures cannot change anyone else.
  bool all_at_cap_ = true;

  // -- sparse-engine state --------------------------------------------------
  double vtime_ = 0.0;          // GPS virtual time, dV/dt = mu * capacity
  SimTime v_updated_at_ = 0.0;  // real time vtime_ was advanced to
  double mu_ = 0.0;             // current normalized water level
  CompensatedSum s_ncap_;       // sum of ncap over capped flows
  CompensatedSum w_fair_;       // sum of weight over fair flows
  std::size_t capped_count_ = 0;
  std::size_t fair_count_ = 0;
  std::set<FlowKey> capped_by_ratio_;
  std::set<FlowKey> fair_by_ratio_;
  std::set<FlowKey> fair_by_finish_;
  EventHandle fair_head_;

  // -- lookup indexes (both modes) -------------------------------------------
  std::uint64_t next_request_id_ = 0;
  std::unordered_map<std::uint64_t, RequestIt> by_id_;
  /// Per-owner requests in arrival order — served(owner) accumulates
  /// in-flight progress in exactly the order the old full-list scan did.
  std::unordered_map<OwnerId, std::vector<const Request*>> owner_index_;
  std::unordered_map<const ShareSlot*, std::size_t> slot_uses_;

  mutable std::unordered_map<OwnerId, CompensatedSum> served_;
  CompensatedSum total_served_;

  std::uint64_t full_reallocs_ = 0;
  std::uint64_t fast_reallocs_ = 0;
  std::uint64_t rate_rescales_ = 0;
  std::uint64_t rate_keeps_ = 0;
  std::uint64_t flows_skipped_ = 0;
  std::uint64_t sparse_activations_ = 0;
  std::uint64_t sparse_events_ = 0;
  std::uint64_t boundary_crossings_ = 0;
  std::uint64_t level_updates_ = 0;
  std::uint64_t noop_slot_reallocs_ = 0;
};

}  // namespace avf::sim
