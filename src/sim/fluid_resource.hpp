// Fluid-flow shared resource with per-consumer caps.
//
// This is the single rate-sharing engine behind both CPUs (capacity in ops/s)
// and network links (capacity in bytes/s).  Concurrent requests share the
// capacity by weighted max-min fairness, with each request additionally
// limited to `slot->cap * capacity` — the sandbox's resource limit.  The
// semantics match the paper's virtual execution environment: when the sum of
// caps is below 1, every consumer receives *exactly* its cap (under-loaded
// guarantee, §5.1); when over-subscribed, capacity is split proportionally to
// weights below the caps.
//
// Requests progress as fluid flows: whenever the active set, a cap, or the
// capacity changes, in-flight progress is credited and allocations are
// recomputed (water-filling), and the earliest completion is (re)scheduled.
#pragma once

#include <coroutine>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace avf::sim {

class FluidResource {
 public:
  /// `capacity` in units/second (> 0).
  FluidResource(Simulator& sim, std::string name, double capacity);

  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }

  /// Change total capacity; in-flight requests are re-allocated.
  void set_capacity(double capacity);

  /// Must be called after mutating any ShareSlot used by an in-flight
  /// request (the resource cannot observe the change on its own).
  void reallocate();

  /// Awaitable: consume `amount` units under the entitlement in `slot`.
  /// Completes when the full amount has been served.  `owner` attributes the
  /// consumption for accounting; pass kNoOwner to skip attribution.
  ///
  ///   co_await host.cpu().consume(1e6, my_slot, my_id);
  auto consume(double amount, ShareSlotPtr slot, OwnerId owner = kNoOwner) {
    struct Awaiter {
      FluidResource& res;
      double amount;
      ShareSlotPtr slot;
      OwnerId owner;
      bool await_ready() const noexcept { return amount <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        res.add_request(amount, std::move(slot), owner, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, amount, std::move(slot), owner};
  }

  /// Cumulative units served to `owner` up to the current simulated time
  /// (includes partial progress of in-flight requests).
  double served(OwnerId owner) const;
  /// Cumulative units served to all owners.
  double total_served() const;

  /// Number of in-flight requests.
  std::size_t active_requests() const { return requests_.size(); }

  /// Whether `owner` has a request in flight.
  bool has_request(OwnerId owner) const;

  /// Current aggregate allocated rate (units/s); <= capacity.
  double allocated_rate() const;

 private:
  struct Request {
    double remaining;
    double rate = 0.0;  // current allocation, units/s
    ShareSlotPtr slot;
    OwnerId owner;
    std::coroutine_handle<> waiter;
  };

  void add_request(double amount, ShareSlotPtr slot, OwnerId owner,
                   std::coroutine_handle<> h);
  /// Credit progress since last_update_ at current rates.
  void advance();
  /// Recompute allocations (water-filling) and reschedule completion.
  void reschedule();

  Simulator& sim_;
  std::string name_;
  double capacity_;
  SimTime last_update_ = 0.0;
  std::list<Request> requests_;
  EventHandle completion_event_;
  mutable std::unordered_map<OwnerId, double> served_;
  double total_served_ = 0.0;
};

}  // namespace avf::sim
