// Fluid-flow shared resource with per-consumer caps.
//
// This is the single rate-sharing engine behind both CPUs (capacity in ops/s)
// and network links (capacity in bytes/s).  Concurrent requests share the
// capacity by weighted max-min fairness, with each request additionally
// limited to `slot->cap * capacity` — the sandbox's resource limit.  The
// semantics match the paper's virtual execution environment: when the sum of
// caps is below 1, every consumer receives *exactly* its cap (under-loaded
// guarantee, §5.1); when over-subscribed, capacity is split proportionally to
// weights below the caps.
//
// Requests progress as fluid flows.  Reallocation is *incremental*: each
// in-flight request carries its own completion event and a lazily-updated
// progress credit, so a flow start/finish only touches the flows whose rate
// actually changes.  In the under-loaded regime (every active flow capped,
// cap-rates summing below capacity) an arrival or departure is O(1): the
// other flows' rates are provably unchanged, so their events and credits are
// left alone.  Only when the allocation genuinely shifts (over-subscription,
// capacity change, slot mutation) does a full water-filling pass run — and
// even then, flows whose recomputed rate is bit-identical keep their
// scheduled completion event.  With N clients contending on one link this
// turns the O(N) per-event / O(N^2) per-wave reallocation of the previous
// implementation into O(1) per event for capped workloads.
#pragma once

#include <coroutine>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace avf::sim {

class FluidResource {
 public:
  /// `capacity` in units/second (> 0).
  FluidResource(Simulator& sim, std::string name, double capacity);

  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }

  /// Change total capacity; in-flight requests are re-allocated.
  void set_capacity(double capacity);

  /// Must be called after mutating any ShareSlot used by an in-flight
  /// request (the resource cannot observe the change on its own).  Always a
  /// full water-filling pass — slot mutations can change any flow's rate.
  void reallocate();

  /// Awaitable: consume `amount` units under the entitlement in `slot`.
  /// Completes when the full amount has been served.  `owner` attributes the
  /// consumption for accounting; pass kNoOwner to skip attribution.
  ///
  ///   co_await host.cpu().consume(1e6, my_slot, my_id);
  auto consume(double amount, ShareSlotPtr slot, OwnerId owner = kNoOwner) {
    struct Awaiter {
      FluidResource& res;
      double amount;
      ShareSlotPtr slot;
      OwnerId owner;
      bool await_ready() const noexcept { return amount <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        res.add_request(amount, std::move(slot), owner, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, amount, std::move(slot), owner};
  }

  /// Cumulative units served to `owner` up to the current simulated time
  /// (includes partial progress of in-flight requests).
  double served(OwnerId owner) const;
  /// Cumulative units served to all owners.
  double total_served() const;

  /// Number of in-flight requests.
  std::size_t active_requests() const { return requests_.size(); }

  /// Whether `owner` has a request in flight.
  bool has_request(OwnerId owner) const;

  /// Current aggregate allocated rate (units/s); <= capacity.
  double allocated_rate() const;

  // -- reallocation statistics (micro_viz_scale gates on these) -----------
  /// Full water-filling passes (arrival/departure outside the capped fast
  /// path, capacity changes, explicit reallocate() calls).
  std::uint64_t full_reallocs() const { return full_reallocs_; }
  /// O(1) arrivals/departures that provably left every other flow's rate
  /// unchanged (the under-loaded capped regime).
  std::uint64_t fast_reallocs() const { return fast_reallocs_; }
  /// Per-flow rate assignments where the rate actually changed (each one
  /// reschedules that flow's completion event).
  std::uint64_t rate_rescales() const { return rate_rescales_; }
  /// Flows inspected by a full pass whose rate was bit-identical — their
  /// completion events were left untouched.  The previous implementation
  /// rescheduled these too.
  std::uint64_t rate_keeps() const { return rate_keeps_; }
  /// Other in-flight flows present during fast-path events — flows the
  /// previous O(N)-per-event implementation would have re-credited and
  /// rescheduled.
  std::uint64_t flows_skipped() const { return flows_skipped_; }

 private:
  struct Request {
    double remaining;
    double rate = 0.0;        // current allocation, units/s
    SimTime credited_at;      // progress has been credited up to here
    double cap_rate = 0.0;    // clamp(slot->cap, 0, 1) * capacity at last alloc
    ShareSlotPtr slot;
    OwnerId owner;
    std::coroutine_handle<> waiter;
    EventHandle completion;
  };
  using RequestIt = std::list<Request>::iterator;

  void add_request(double amount, ShareSlotPtr slot, OwnerId owner,
                   std::coroutine_handle<> h);
  /// Credit progress since `credited_at` at the request's current rate.
  void credit(Request& r, SimTime now);
  /// Completion criterion shared by the event path and full passes: either
  /// the residual is below epsilon or so small that the completion delay
  /// would not advance the clock (then the event would respin forever).
  bool finished(const Request& r, SimTime now) const;
  /// (Re)schedule the request's own completion event from its current
  /// remaining/rate; cancels any previous event.
  void schedule_completion(RequestIt it);
  /// A request's own completion event fired.
  void on_completion(RequestIt it);
  /// Resume the waiter and drop the request; O(1) when every remaining flow
  /// is at its cap (nobody's rate can rise above it), full pass otherwise.
  void remove_request(RequestIt it);
  /// Credit everyone, sweep finished requests, rerun water-filling, and
  /// reschedule exactly the flows whose rate changed.
  void full_reallocate();

  Simulator& sim_;
  std::string name_;
  double capacity_;
  std::list<Request> requests_;
  /// Sum of the active requests' cap_rate values, maintained incrementally.
  double cap_rate_sum_ = 0.0;
  /// True iff every active flow's rate equals its cap rate (the under-loaded
  /// guarantee regime): arrivals and departures cannot change anyone else.
  bool all_at_cap_ = true;
  mutable std::unordered_map<OwnerId, double> served_;
  double total_served_ = 0.0;
  std::uint64_t full_reallocs_ = 0;
  std::uint64_t fast_reallocs_ = 0;
  std::uint64_t rate_rescales_ = 0;
  std::uint64_t rate_keeps_ = 0;
  std::uint64_t flows_skipped_ = 0;
};

}  // namespace avf::sim
