#include "sim/network.hpp"

#include "util/fmt.hpp"
#include <stdexcept>

namespace avf::sim {

Host& Network::add_host(const std::string& name, double cpu_ops_per_sec,
                        std::uint64_t memory_bytes) {
  auto [it, inserted] = hosts_.try_emplace(
      name, std::make_unique<Host>(sim_, name, cpu_ops_per_sec, memory_bytes));
  if (!inserted) {
    throw std::invalid_argument(avf::util::format("duplicate host name: {}", name));
  }
  return *it->second;
}

Host& Network::host(const std::string& name) {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    throw std::out_of_range(avf::util::format("no such host: {}", name));
  }
  return *it->second;
}

Link& Network::connect(Host& a, Host& b, double bandwidth_bps,
                       double latency_s) {
  links_.push_back(std::make_unique<Link>(
      sim_, avf::util::format("{}<->{}", a.name(), b.name()), bandwidth_bps,
      latency_s));
  return *links_.back();
}

Channel& Network::open_channel(Link& link) {
  channels_.push_back(std::make_unique<Channel>(link));
  return *channels_.back();
}

}  // namespace avf::sim
