// Coroutine task type for simulator processes.
//
// A simulated process is a coroutine returning Task<> (or Task<T> for
// sub-routines with results).  Tasks are lazy: the body does not run until
// either the simulator resumes a spawned (detached) task or a parent
// `co_await`s it.  Awaiting a child transfers control symmetrically, and the
// child resumes its parent on completion — so arbitrarily deep call trees of
// simulated activity compose without recursion on the real stack.
//
// Lifetime rules:
//  * `co_await task` — the Task object in the parent frame owns the child
//    frame; it is destroyed when the Task goes out of scope after completion.
//  * `Simulator::spawn(std::move(task))` — the frame is detached; it destroys
//    itself at final-suspend and reports any escaped exception to the
//    simulator, which surfaces it from run().  Frames still suspended when
//    the simulator is destroyed are reclaimed by ~Simulator.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace avf::sim {

class Simulator;

namespace detail {

/// Shared (non-templated) part of every task promise.
struct PromiseBase {
  std::coroutine_handle<> continuation;  // parent to resume at completion
  std::exception_ptr exception;
  Simulator* detached_owner = nullptr;  // set by Simulator::spawn

  std::suspend_always initial_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

void report_detached_exception(Simulator& sim, std::exception_ptr e);
void deregister_detached(Simulator& sim, void* frame) noexcept;

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() noexcept { return false; }

  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    PromiseBase& p = h.promise();
    if (p.continuation) return p.continuation;
    if (p.detached_owner != nullptr) {
      if (p.exception) report_detached_exception(*p.detached_owner, p.exception);
      deregister_detached(*p.detached_owner, h.address());
    }
    h.destroy();
    return std::noop_coroutine();
  }

  void await_resume() noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() { destroy(); }

  // Awaitable interface (parent co_awaits the child).
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer: start/resume the child
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    return std::move(*p.value);
  }

 private:
  friend class Simulator;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  /// Detach for Simulator::spawn: frame self-destroys at completion.
  std::coroutine_handle<> release(Simulator& sim) {
    handle_.promise().detached_owner = &sim;
    return std::exchange(handle_, {});
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  friend class Simulator;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<> release(Simulator& sim) {
    handle_.promise().detached_owner = &sim;
    return std::exchange(handle_, {});
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace avf::sim
