#include "sim/fluid_resource.hpp"

#include <algorithm>
#include "util/fmt.hpp"
#include <limits>
#include <stdexcept>
#include <vector>

namespace avf::sim {

namespace {
// Work amounts are ops (>= 1e3 scale) or bytes; anything below this is done.
constexpr double kRemainingEpsilon = 1e-7;
}  // namespace

FluidResource::FluidResource(Simulator& sim, std::string name, double capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: capacity must be > 0, got {}", name_,
                    capacity));
  }
  last_update_ = sim_.now();
}

void FluidResource::set_capacity(double capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: capacity must be > 0, got {}", name_,
                    capacity));
  }
  advance();
  capacity_ = capacity;
  reschedule();
}

void FluidResource::reallocate() {
  advance();
  reschedule();
}

void FluidResource::add_request(double amount, ShareSlotPtr slot,
                                OwnerId owner, std::coroutine_handle<> h) {
  if (!slot) {
    throw std::invalid_argument(
        avf::util::format("resource {}: null share slot", name_));
  }
  if (slot->weight <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: non-positive weight {}", name_,
                    slot->weight));
  }
  advance();
  requests_.push_back(Request{amount, 0.0, std::move(slot), owner, h});
  reschedule();
}

void FluidResource::advance() {
  SimTime now = sim_.now();
  double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (Request& r : requests_) {
    double delta = std::min(r.rate * dt, r.remaining);
    r.remaining -= delta;
    if (r.owner != kNoOwner) served_[r.owner] += delta;
    total_served_ += delta;
  }
}

void FluidResource::reschedule() {
  // 1. Complete any finished requests.  A request also counts as finished
  // when its residual work is so small that the completion delay would not
  // advance the simulation clock (now + remaining/rate == now in double
  // precision) — otherwise the completion event would fire at the same
  // timestamp, advance() would credit zero progress, and the resource
  // would reschedule itself forever.
  SimTime now = sim_.now();
  for (auto it = requests_.begin(); it != requests_.end();) {
    bool finished = it->remaining <= kRemainingEpsilon;
    if (!finished && it->rate > 0.0) {
      finished = now + it->remaining / it->rate <= now;
    }
    if (finished) {
      sim_.resume_soon(it->waiter);
      it = requests_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. Water-filling: weighted max-min allocation under per-request caps.
  std::vector<Request*> unfixed;
  unfixed.reserve(requests_.size());
  for (Request& r : requests_) {
    r.rate = 0.0;
    unfixed.push_back(&r);
  }
  double budget = capacity_;
  while (!unfixed.empty() && budget > 0.0) {
    double weight_sum = 0.0;
    for (Request* r : unfixed) weight_sum += r->slot->weight;
    bool fixed_any = false;
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      Request* r = *it;
      double cap_rate = std::clamp(r->slot->cap, 0.0, 1.0) * capacity_;
      double fair = budget * r->slot->weight / weight_sum;
      if (fair >= cap_rate) {
        r->rate = cap_rate;
        budget -= cap_rate;
        it = unfixed.erase(it);
        fixed_any = true;
      } else {
        ++it;
      }
    }
    if (!fixed_any) {
      // Nobody hits a cap: split the remaining budget by weight.
      for (Request* r : unfixed) {
        r->rate = budget * r->slot->weight / weight_sum;
      }
      break;
    }
    budget = std::max(budget, 0.0);
  }

  // 3. Schedule the earliest completion.
  completion_event_.cancel();
  double earliest = std::numeric_limits<double>::infinity();
  for (const Request& r : requests_) {
    if (r.rate > 0.0) earliest = std::min(earliest, r.remaining / r.rate);
  }
  if (earliest != std::numeric_limits<double>::infinity()) {
    completion_event_ = sim_.schedule(earliest, [this] {
      advance();
      reschedule();
    });
  }
}

double FluidResource::served(OwnerId owner) const {
  // Account the in-flight progress since last_update_ without mutating.
  double base = 0.0;
  if (auto it = served_.find(owner); it != served_.end()) base = it->second;
  double dt = sim_.now() - last_update_;
  if (dt > 0.0) {
    for (const Request& r : requests_) {
      if (r.owner == owner) base += std::min(r.rate * dt, r.remaining);
    }
  }
  return base;
}

double FluidResource::total_served() const {
  double base = total_served_;
  double dt = sim_.now() - last_update_;
  if (dt > 0.0) {
    for (const Request& r : requests_) {
      base += std::min(r.rate * dt, r.remaining);
    }
  }
  return base;
}

bool FluidResource::has_request(OwnerId owner) const {
  for (const Request& r : requests_) {
    if (r.owner == owner) return true;
  }
  return false;
}

double FluidResource::allocated_rate() const {
  double sum = 0.0;
  for (const Request& r : requests_) sum += r.rate;
  return sum;
}

}  // namespace avf::sim
