#include "sim/fluid_resource.hpp"

#include <algorithm>
#include "util/fmt.hpp"
#include <limits>
#include <stdexcept>
#include <vector>

namespace avf::sim {

namespace {
// Work amounts are ops (>= 1e3 scale) or bytes; anything below this is done.
constexpr double kRemainingEpsilon = 1e-7;

double cap_rate_of(const ShareSlot& slot, double capacity) {
  return std::clamp(slot.cap, 0.0, 1.0) * capacity;
}
}  // namespace

FluidResource::FluidResource(Simulator& sim, std::string name, double capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: capacity must be > 0, got {}", name_,
                    capacity));
  }
}

void FluidResource::set_capacity(double capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: capacity must be > 0, got {}", name_,
                    capacity));
  }
  capacity_ = capacity;
  full_reallocate();
}

void FluidResource::reallocate() { full_reallocate(); }

void FluidResource::add_request(double amount, ShareSlotPtr slot,
                                OwnerId owner, std::coroutine_handle<> h) {
  if (!slot) {
    throw std::invalid_argument(
        avf::util::format("resource {}: null share slot", name_));
  }
  if (slot->weight <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: non-positive weight {}", name_,
                    slot->weight));
  }
  SimTime now = sim_.now();
  requests_.push_back(Request{amount, 0.0, now, 0.0, std::move(slot), owner,
                              h, EventHandle{}});
  RequestIt it = std::prev(requests_.end());
  double cr = cap_rate_of(*it->slot, capacity_);
  if (all_at_cap_ && cap_rate_sum_ + cr <= capacity_) {
    // Under-loaded arrival: the newcomer runs at exactly its cap and no
    // other flow's allocation moves (the §5.1 guarantee held before and
    // still holds) — O(1), nobody else is touched.
    it->cap_rate = cr;
    it->rate = cr;
    cap_rate_sum_ += cr;
    if (cr > 0.0) {
      ++rate_rescales_;
      schedule_completion(it);
    }
    ++fast_reallocs_;
    flows_skipped_ += requests_.size() - 1;
    return;
  }
  full_reallocate();
}

void FluidResource::credit(Request& r, SimTime now) {
  double dt = now - r.credited_at;
  r.credited_at = now;
  if (dt <= 0.0 || r.rate <= 0.0) return;
  double delta = std::min(r.rate * dt, r.remaining);
  r.remaining -= delta;
  if (r.owner != kNoOwner) served_[r.owner] += delta;
  total_served_ += delta;
}

bool FluidResource::finished(const Request& r, SimTime now) const {
  if (r.remaining <= kRemainingEpsilon) return true;
  // Residual so small the completion delay would not advance the clock:
  // treat as done, otherwise the completion event would fire at the same
  // timestamp, credit zero progress, and respin forever.
  return r.rate > 0.0 && now + r.remaining / r.rate <= now;
}

void FluidResource::schedule_completion(RequestIt it) {
  it->completion.cancel();
  it->completion = sim_.schedule(it->remaining / it->rate,
                                 [this, it] { on_completion(it); });
}

void FluidResource::on_completion(RequestIt it) {
  SimTime now = sim_.now();
  credit(*it, now);
  if (!finished(*it, now)) {
    // Floating-point leftover big enough to matter: keep serving it.
    schedule_completion(it);
    return;
  }
  remove_request(it);
}

void FluidResource::remove_request(RequestIt it) {
  it->completion.cancel();
  sim_.resume_soon(it->waiter);
  cap_rate_sum_ -= it->cap_rate;
  requests_.erase(it);
  if (requests_.empty()) cap_rate_sum_ = 0.0;  // kill accumulated drift
  if (all_at_cap_) {
    // Every surviving flow already runs at its cap; freeing capacity cannot
    // raise anyone above it, so allocations are unchanged — O(1).
    ++fast_reallocs_;
    flows_skipped_ += requests_.size();
    return;
  }
  full_reallocate();
}

void FluidResource::full_reallocate() {
  ++full_reallocs_;
  SimTime now = sim_.now();

  // 1. Credit progress and complete any finished requests.
  for (Request& r : requests_) credit(r, now);
  for (auto it = requests_.begin(); it != requests_.end();) {
    if (finished(*it, now)) {
      it->completion.cancel();
      sim_.resume_soon(it->waiter);
      it = requests_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. Water-filling: weighted max-min allocation under per-request caps.
  // Rates land in `target` (parallel to iteration order) so the current
  // rates survive for the changed-vs-kept comparison below.
  std::vector<Request*> all;
  std::vector<double> target;
  all.reserve(requests_.size());
  for (Request& r : requests_) {
    r.cap_rate = cap_rate_of(*r.slot, capacity_);
    all.push_back(&r);
  }
  target.assign(all.size(), 0.0);
  std::vector<std::size_t> unfixed(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) unfixed[i] = i;
  double budget = capacity_;
  while (!unfixed.empty() && budget > 0.0) {
    double weight_sum = 0.0;
    for (std::size_t i : unfixed) weight_sum += all[i]->slot->weight;
    bool fixed_any = false;
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      Request* r = all[*it];
      double cap_rate = r->cap_rate;
      double fair = budget * r->slot->weight / weight_sum;
      if (fair >= cap_rate) {
        target[*it] = cap_rate;
        budget -= cap_rate;
        it = unfixed.erase(it);
        fixed_any = true;
      } else {
        ++it;
      }
    }
    if (!fixed_any) {
      // Nobody hits a cap: split the remaining budget by weight.
      for (std::size_t i : unfixed) {
        target[i] = budget * all[i]->slot->weight / weight_sum;
      }
      break;
    }
    budget = std::max(budget, 0.0);
  }

  // 3. Apply: only flows whose rate actually changed get their completion
  // event rescheduled; bit-identical rates keep their pending event (its
  // absolute fire time is already right, and not touching it is what makes
  // capped multi-flow workloads cheap).
  cap_rate_sum_ = 0.0;
  all_at_cap_ = true;
  for (std::size_t i = 0; i < all.size(); ++i) {
    Request& r = *all[i];
    cap_rate_sum_ += r.cap_rate;
    if (target[i] != r.cap_rate) all_at_cap_ = false;
    if (target[i] == r.rate && (r.rate <= 0.0 || r.completion.pending())) {
      if (r.rate > 0.0) ++rate_keeps_;
      continue;
    }
    r.rate = target[i];
    ++rate_rescales_;
    if (r.rate > 0.0) {
      schedule_completion(std::next(requests_.begin(),
                                    static_cast<std::ptrdiff_t>(i)));
    } else {
      r.completion.cancel();
    }
  }
}

double FluidResource::served(OwnerId owner) const {
  // Account the in-flight progress since each request's credit point
  // without mutating.
  double base = 0.0;
  if (auto it = served_.find(owner); it != served_.end()) base = it->second;
  SimTime now = sim_.now();
  for (const Request& r : requests_) {
    if (r.owner != owner) continue;
    double dt = now - r.credited_at;
    if (dt > 0.0) base += std::min(r.rate * dt, r.remaining);
  }
  return base;
}

double FluidResource::total_served() const {
  double base = total_served_;
  SimTime now = sim_.now();
  for (const Request& r : requests_) {
    double dt = now - r.credited_at;
    if (dt > 0.0) base += std::min(r.rate * dt, r.remaining);
  }
  return base;
}

bool FluidResource::has_request(OwnerId owner) const {
  for (const Request& r : requests_) {
    if (r.owner == owner) return true;
  }
  return false;
}

double FluidResource::allocated_rate() const {
  double sum = 0.0;
  for (const Request& r : requests_) sum += r.rate;
  return sum;
}

}  // namespace avf::sim
