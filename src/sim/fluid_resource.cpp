#include "sim/fluid_resource.hpp"

#include <algorithm>
#include "util/fmt.hpp"
#include <limits>
#include <stdexcept>
#include <vector>

namespace avf::sim {

namespace {
// Work amounts are ops (>= 1e3 scale) or bytes; anything below this is done.
constexpr double kRemainingEpsilon = 1e-7;

double cap_rate_of(const ShareSlot& slot, double capacity) {
  return std::clamp(slot.cap, 0.0, 1.0) * capacity;
}
}  // namespace

FluidResource::FluidResource(Simulator& sim, std::string name, double capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: capacity must be > 0, got {}", name_,
                    capacity));
  }
}

void FluidResource::set_capacity(double capacity) {
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: capacity must be > 0, got {}", name_,
                    capacity));
  }
  if (mode_ == Mode::kSparse) {
    sparse_set_capacity(capacity);
    return;
  }
  capacity_ = capacity;
  full_reallocate();
}

void FluidResource::reallocate() {
  if (mode_ == Mode::kSparse) {
    sparse_rebuild();
    return;
  }
  full_reallocate();
}

void FluidResource::slot_changed(const ShareSlotPtr& slot) {
  if (slot_uses_.find(slot.get()) == slot_uses_.end()) {
    // No in-flight request holds this slot: nothing the water-filling pass
    // could change.  (Future requests pick up the new cap on arrival.)
    ++noop_slot_reallocs_;
    return;
  }
  reallocate();
}

void FluidResource::add_request(double amount, ShareSlotPtr slot,
                                OwnerId owner, std::coroutine_handle<> h) {
  if (!slot) {
    throw std::invalid_argument(
        avf::util::format("resource {}: null share slot", name_));
  }
  if (slot->weight <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("resource {}: non-positive weight {}", name_,
                    slot->weight));
  }
  if (mode_ == Mode::kDense && requests_.size() >= sparse_threshold_) {
    migrate_to_sparse();
  }
  if (mode_ == Mode::kSparse) {
    sparse_add(amount, std::move(slot), owner, h);
    return;
  }
  SimTime now = sim_.now();
  requests_.push_back(Request{amount, 0.0, now, 0.0, std::move(slot), owner,
                              h, EventHandle{}});
  RequestIt it = std::prev(requests_.end());
  register_request(it);
  double cr = cap_rate_of(*it->slot, capacity_);
  if (all_at_cap_ && cap_rate_sum_ + cr <= capacity_) {
    // Under-loaded arrival: the newcomer runs at exactly its cap and no
    // other flow's allocation moves (the §5.1 guarantee held before and
    // still holds) — O(1), nobody else is touched.
    it->cap_rate = cr;
    it->rate = cr;
    cap_rate_sum_ += cr;
    if (cr > 0.0) {
      ++rate_rescales_;
      schedule_completion(it);
    }
    ++fast_reallocs_;
    flows_skipped_ += requests_.size() - 1;
    return;
  }
  full_reallocate();
}

void FluidResource::register_request(RequestIt it) {
  it->id = next_request_id_++;
  by_id_.emplace(it->id, it);
  owner_index_[it->owner].push_back(&*it);
  ++slot_uses_[it->slot.get()];
}

FluidResource::RequestIt FluidResource::erase_request(RequestIt it) {
  const Request& r = *it;
  by_id_.erase(r.id);
  if (auto oi = owner_index_.find(r.owner); oi != owner_index_.end()) {
    std::erase(oi->second, &r);
    if (oi->second.empty()) owner_index_.erase(oi);
  }
  if (auto su = slot_uses_.find(r.slot.get()); su != slot_uses_.end()) {
    if (--su->second == 0) slot_uses_.erase(su);
  }
  return requests_.erase(it);
}

void FluidResource::credit(Request& r, SimTime now) {
  double dt = now - r.credited_at;
  r.credited_at = now;
  if (dt <= 0.0 || r.rate <= 0.0) return;
  double delta = std::min(r.rate * dt, r.remaining);
  r.remaining -= delta;
  add_served(r.owner, delta);
}

void FluidResource::add_served(OwnerId owner, double delta) {
  if (owner != kNoOwner) served_[owner].add(delta);
  total_served_.add(delta);
}

bool FluidResource::finished(const Request& r, SimTime now) const {
  if (r.remaining <= kRemainingEpsilon) return true;
  // Residual so small the completion delay would not advance the clock:
  // treat as done, otherwise the completion event would fire at the same
  // timestamp, credit zero progress, and respin forever.
  return r.rate > 0.0 && now + r.remaining / r.rate <= now;
}

void FluidResource::schedule_completion(RequestIt it) {
  it->completion.cancel();
  it->completion = sim_.schedule(it->remaining / it->rate,
                                 [this, it] { on_completion(it); });
}

void FluidResource::on_completion(RequestIt it) {
  SimTime now = sim_.now();
  if (mode_ == Mode::kSparse) {
    advance_virtual(now);
    credit(*it, now);
    if (!finished(*it, now)) {
      schedule_completion(it);
      return;
    }
    sparse_remove_capped(it);
    return;
  }
  credit(*it, now);
  if (!finished(*it, now)) {
    // Floating-point leftover big enough to matter: keep serving it.
    schedule_completion(it);
    return;
  }
  remove_request(it);
}

void FluidResource::remove_request(RequestIt it) {
  it->completion.cancel();
  sim_.resume_soon(it->waiter);
  cap_rate_sum_ -= it->cap_rate;
  erase_request(it);
  if (requests_.empty()) cap_rate_sum_ = 0.0;  // kill accumulated drift
  if (all_at_cap_) {
    // Every surviving flow already runs at its cap; freeing capacity cannot
    // raise anyone above it, so allocations are unchanged — O(1).
    ++fast_reallocs_;
    flows_skipped_ += requests_.size();
    return;
  }
  full_reallocate();
}

void FluidResource::full_reallocate() {
  ++full_reallocs_;
  SimTime now = sim_.now();

  // 1. Credit progress and complete any finished requests.
  for (Request& r : requests_) credit(r, now);
  for (auto it = requests_.begin(); it != requests_.end();) {
    if (finished(*it, now)) {
      it->completion.cancel();
      sim_.resume_soon(it->waiter);
      it = erase_request(it);
    } else {
      ++it;
    }
  }

  // 2. Water-filling: weighted max-min allocation under per-request caps.
  // Rates land in `target` (parallel to iteration order) so the current
  // rates survive for the changed-vs-kept comparison below.
  std::vector<Request*> all;
  std::vector<double> target;
  all.reserve(requests_.size());
  for (Request& r : requests_) {
    r.cap_rate = cap_rate_of(*r.slot, capacity_);
    all.push_back(&r);
  }
  target.assign(all.size(), 0.0);
  std::vector<std::size_t> unfixed(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) unfixed[i] = i;
  double budget = capacity_;
  while (!unfixed.empty() && budget > 0.0) {
    double weight_sum = 0.0;
    // avf-srclint: allow(src.float-accum unfixed is index-ordered, so the summation order is pinned and byte-identical across runs)
    for (std::size_t i : unfixed) weight_sum += all[i]->slot->weight;
    bool fixed_any = false;
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      Request* r = all[*it];
      double cap_rate = r->cap_rate;
      double fair = budget * r->slot->weight / weight_sum;
      if (fair >= cap_rate) {
        target[*it] = cap_rate;
        // avf-srclint: allow(src.float-accum water-filling visits flows in arrival order; the subtraction order is pinned)
        budget -= cap_rate;
        it = unfixed.erase(it);
        fixed_any = true;
      } else {
        ++it;
      }
    }
    if (!fixed_any) {
      // Nobody hits a cap: split the remaining budget by weight.
      for (std::size_t i : unfixed) {
        target[i] = budget * all[i]->slot->weight / weight_sum;
      }
      break;
    }
    budget = std::max(budget, 0.0);
  }

  // 3. Apply: only flows whose rate actually changed get their completion
  // event rescheduled; bit-identical rates keep their pending event (its
  // absolute fire time is already right, and not touching it is what makes
  // capped multi-flow workloads cheap).
  cap_rate_sum_ = 0.0;
  all_at_cap_ = true;
  for (std::size_t i = 0; i < all.size(); ++i) {
    Request& r = *all[i];
    // avf-srclint: allow(src.float-accum all is arrival-ordered, so the cap-rate sum order is pinned)
    cap_rate_sum_ += r.cap_rate;
    if (target[i] != r.cap_rate) all_at_cap_ = false;
    if (target[i] == r.rate && (r.rate <= 0.0 || r.completion.pending())) {
      if (r.rate > 0.0) ++rate_keeps_;
      continue;
    }
    r.rate = target[i];
    ++rate_rescales_;
    if (r.rate > 0.0) {
      schedule_completion(std::next(requests_.begin(),
                                    static_cast<std::ptrdiff_t>(i)));
    } else {
      r.completion.cancel();
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse engine.
// ---------------------------------------------------------------------------

void FluidResource::advance_virtual(SimTime now) {
  double dt = now - v_updated_at_;
  if (dt > 0.0) vtime_ += mu_ * capacity_ * dt;
  v_updated_at_ = now;
}

double FluidResource::level() const {
  if (fair_count_ == 0) return 0.0;
  return std::max(0.0, (1.0 - s_ncap_.value()) / w_fair_.value());
}

void FluidResource::credit_fair(Request& r) {
  double delta = r.weight * (vtime_ - r.vcredit);
  r.vcredit = vtime_;
  r.credited_at = sim_.now();
  if (delta <= 0.0) return;
  delta = std::min(delta, r.remaining);
  r.remaining -= delta;
  add_served(r.owner, delta);
}

void FluidResource::demote_to_capped(RequestIt it) {
  Request& r = *it;
  credit_fair(r);  // no-op when the flow was (re)inserted at vtime_
  fair_by_ratio_.erase({r.ratio, r.id});
  fair_by_finish_.erase({r.vfinish, r.id});
  w_fair_.sub(r.weight);
  if (--fair_count_ == 0) w_fair_.reset();
  capped_by_ratio_.insert({r.ratio, r.id});
  s_ncap_.add(r.ncap);
  ++capped_count_;
  ++boundary_crossings_;
  double rate = r.ncap * capacity_;
  // A flow that was continuously capped at this same rate (rebuilds pass
  // through here with r.fair still naming the previous side) keeps its
  // pending completion event — its absolute fire time is already right.
  bool keep = !r.fair && rate == r.rate &&
              (rate <= 0.0 || r.completion.pending());
  r.fair = false;
  if (keep) {
    if (rate > 0.0) ++rate_keeps_;
    return;
  }
  r.rate = rate;
  ++rate_rescales_;
  if (rate > 0.0) {
    schedule_completion(it);
  } else {
    r.completion.cancel();
  }
}

void FluidResource::promote_to_fair(RequestIt it) {
  Request& r = *it;
  credit(r, sim_.now());
  r.completion.cancel();
  capped_by_ratio_.erase({r.ratio, r.id});
  s_ncap_.sub(r.ncap);
  if (--capped_count_ == 0) s_ncap_.reset();
  r.fair = true;
  r.rate = 0.0;
  r.vcredit = vtime_;
  r.vfinish = vtime_ + r.remaining / r.weight;
  fair_by_ratio_.insert({r.ratio, r.id});
  fair_by_finish_.insert({r.vfinish, r.id});
  w_fair_.add(r.weight);
  ++fair_count_;
  ++boundary_crossings_;
}

void FluidResource::sparse_rebalance() {
  // Every move strictly raises the level: demoting a fair flow with
  // ratio <= mu removes weight faster than spare capacity, promoting a
  // capped flow with ratio > mu' frees more cap than the weight it adds.
  // A monotonically rising level cannot revisit a configuration, so the
  // loop terminates; the guard below is pure paranoia against FP edge
  // cases at exact-equality boundaries.
  std::size_t guard = 4 * requests_.size() + 8;
  bool moved = true;
  while (moved) {
    moved = false;
    while (fair_count_ > 0) {
      double mu = level();
      FlowKey head = *fair_by_ratio_.begin();
      if (!(head.first <= mu)) break;
      demote_to_capped(by_id_.at(head.second));
      moved = true;
      if (guard-- == 0) return;
    }
    while (capped_count_ > 0) {
      FlowKey tail = *std::prev(capped_by_ratio_.end());
      Request& r = *by_id_.at(tail.second);
      // Level this flow would see as a fair flow; strictly-greater keeps
      // exact cap==share ties capped (either side gives the same rate).
      double mu_if = (1.0 - (s_ncap_.value() - r.ncap)) /
                     (w_fair_.value() + r.weight);
      if (!(r.ratio > std::max(0.0, mu_if))) break;
      promote_to_fair(by_id_.at(tail.second));
      moved = true;
      if (guard-- == 0) return;
    }
  }
}

void FluidResource::sparse_finalize() {
  double mu = level();
  if (mu != mu_) {
    mu_ = mu;
    ++level_updates_;
  }
  fair_head_.cancel();
  if (fair_count_ == 0) return;
  double speed = mu_ * capacity_;
  if (speed <= 0.0) return;  // capped flows saturate the capacity: starved
  double vf = fair_by_finish_.begin()->first;
  double delay = std::max(0.0, (vf - vtime_) / speed);
  fair_head_ = sim_.schedule(delay, [this] { on_fair_head(); });
}

void FluidResource::on_fair_head() {
  SimTime now = sim_.now();
  advance_virtual(now);
  bool removed = false;
  while (fair_count_ > 0) {
    FlowKey head = *fair_by_finish_.begin();
    RequestIt it = by_id_.at(head.second);
    Request& r = *it;
    credit_fair(r);
    bool done = r.remaining <= kRemainingEpsilon;
    if (!done) {
      // Mirror finished(): a residual whose completion delay cannot
      // advance the clock would respin this event forever.
      double frate = mu_ * capacity_ * r.weight;
      done = frate > 0.0 && now + r.remaining / frate <= now;
    }
    if (!done) break;
    fair_by_ratio_.erase({r.ratio, r.id});
    fair_by_finish_.erase({r.vfinish, r.id});
    w_fair_.sub(r.weight);
    if (--fair_count_ == 0) w_fair_.reset();
    sim_.resume_soon(r.waiter);
    erase_request(it);
    removed = true;
  }
  if (requests_.empty()) {
    reset_sparse_to_dense();
    return;
  }
  if (removed) {
    ++sparse_events_;
    sparse_rebalance();
  }
  sparse_finalize();
}

void FluidResource::sparse_add(double amount, ShareSlotPtr slot,
                               OwnerId owner, std::coroutine_handle<> h) {
  SimTime now = sim_.now();
  advance_virtual(now);
  requests_.push_back(Request{amount, 0.0, now, 0.0, std::move(slot), owner,
                              h, EventHandle{}});
  RequestIt it = std::prev(requests_.end());
  register_request(it);
  Request& r = *it;
  r.ncap = std::clamp(r.slot->cap, 0.0, 1.0);
  r.weight = r.slot->weight;
  r.ratio = r.ncap / r.weight;
  r.cap_rate = r.ncap * capacity_;
  r.fair = true;
  r.vcredit = vtime_;
  r.vfinish = vtime_ + r.remaining / r.weight;
  fair_by_ratio_.insert({r.ratio, r.id});
  fair_by_finish_.insert({r.vfinish, r.id});
  w_fair_.add(r.weight);
  ++fair_count_;
  ++sparse_events_;
  sparse_rebalance();
  sparse_finalize();
}

void FluidResource::sparse_remove_capped(RequestIt it) {
  Request& r = *it;
  r.completion.cancel();
  capped_by_ratio_.erase({r.ratio, r.id});
  s_ncap_.sub(r.ncap);
  if (--capped_count_ == 0) s_ncap_.reset();
  sim_.resume_soon(r.waiter);
  erase_request(it);
  ++sparse_events_;
  if (requests_.empty()) {
    reset_sparse_to_dense();
    return;
  }
  sparse_rebalance();
  sparse_finalize();
}

void FluidResource::sparse_set_capacity(double capacity) {
  ++full_reallocs_;
  SimTime now = sim_.now();
  advance_virtual(now);
  capacity_ = capacity;
  // The level and the capped/fair boundary are normalized (capacity
  // cancels out of both), so only capped flows — whose absolute rates
  // scale with the capacity — need touching.  Fair flows keep their fixed
  // virtual finish; the virtual clock simply runs at the new speed.
  std::vector<std::uint64_t> done;
  for (const FlowKey& key : capped_by_ratio_) {
    Request& r = *by_id_.at(key.second);
    credit(r, now);
    double rate = r.ncap * capacity_;
    r.cap_rate = rate;
    if (finished(r, now)) {
      done.push_back(key.second);
      continue;
    }
    if (rate == r.rate && (rate <= 0.0 || r.completion.pending())) {
      if (rate > 0.0) ++rate_keeps_;
      continue;
    }
    r.rate = rate;
    ++rate_rescales_;
    if (rate > 0.0) {
      schedule_completion(by_id_.at(key.second));
    } else {
      r.completion.cancel();
    }
  }
  for (std::uint64_t id : done) {
    RequestIt it = by_id_.at(id);
    it->completion.cancel();
    capped_by_ratio_.erase({it->ratio, it->id});
    s_ncap_.sub(it->ncap);
    if (--capped_count_ == 0) s_ncap_.reset();
    sim_.resume_soon(it->waiter);
    erase_request(it);
  }
  if (requests_.empty()) {
    reset_sparse_to_dense();
    return;
  }
  sparse_rebalance();
  sparse_finalize();
}

void FluidResource::sparse_rebuild() {
  ++full_reallocs_;
  SimTime now = sim_.now();
  advance_virtual(now);
  // Set membership is re-derived below; clear first so the sweep can erase
  // requests without set bookkeeping.
  capped_by_ratio_.clear();
  fair_by_ratio_.clear();
  fair_by_finish_.clear();
  s_ncap_.reset();
  w_fair_.reset();
  capped_count_ = 0;
  fair_count_ = 0;
  for (auto it = requests_.begin(); it != requests_.end();) {
    Request& r = *it;
    if (r.fair) {
      credit_fair(r);
    } else {
      credit(r, now);
    }
    bool done = r.fair ? r.remaining <= kRemainingEpsilon : finished(r, now);
    if (done) {
      r.completion.cancel();
      sim_.resume_soon(r.waiter);
      it = erase_request(it);
    } else {
      ++it;
    }
  }
  if (requests_.empty()) {
    reset_sparse_to_dense();
    return;
  }
  rebuild_sparse_partition();
}

void FluidResource::rebuild_sparse_partition() {
  for (auto it = requests_.begin(); it != requests_.end(); ++it) {
    Request& r = *it;
    r.ncap = std::clamp(r.slot->cap, 0.0, 1.0);
    r.weight = r.slot->weight;
    r.ratio = r.ncap / r.weight;
    r.cap_rate = r.ncap * capacity_;
    r.vcredit = vtime_;
    r.vfinish = vtime_ + r.remaining / r.weight;
    // r.fair keeps naming the *previous* side until the partition settles;
    // demote_to_capped() uses it to keep still-valid completion events.
    fair_by_ratio_.insert({r.ratio, r.id});
    fair_by_finish_.insert({r.vfinish, r.id});
    w_fair_.add(r.weight);
    ++fair_count_;
  }
  sparse_rebalance();
  // Flows that settled on the fair side: drop any per-flow completion
  // event left over from their capped/dense past.
  for (const FlowKey& key : fair_by_finish_) {
    Request& r = *by_id_.at(key.second);
    if (!r.fair) {
      r.completion.cancel();
      r.rate = 0.0;
      r.fair = true;
    }
  }
  sparse_finalize();
}

void FluidResource::migrate_to_sparse() {
  ++full_reallocs_;
  ++sparse_activations_;
  SimTime now = sim_.now();
  // Dense-style credit + sweep, exactly like full_reallocate() step 1.
  for (Request& r : requests_) credit(r, now);
  for (auto it = requests_.begin(); it != requests_.end();) {
    if (finished(*it, now)) {
      it->completion.cancel();
      sim_.resume_soon(it->waiter);
      it = erase_request(it);
    } else {
      ++it;
    }
  }
  mode_ = Mode::kSparse;
  vtime_ = 0.0;
  v_updated_at_ = now;
  mu_ = 0.0;
  if (requests_.empty()) {
    reset_sparse_to_dense();
    return;
  }
  rebuild_sparse_partition();
}

void FluidResource::reset_sparse_to_dense() {
  mode_ = Mode::kDense;
  capped_by_ratio_.clear();
  fair_by_ratio_.clear();
  fair_by_finish_.clear();
  s_ncap_.reset();
  w_fair_.reset();
  capped_count_ = 0;
  fair_count_ = 0;
  fair_head_.cancel();
  vtime_ = 0.0;
  mu_ = 0.0;
  cap_rate_sum_ = 0.0;
  all_at_cap_ = true;
}

// ---------------------------------------------------------------------------
// Accounting queries.
// ---------------------------------------------------------------------------

double FluidResource::inflight_progress(const Request& r, SimTime now) const {
  if (mode_ == Mode::kSparse && r.fair) {
    double vnow = vtime_ + mu_ * capacity_ * std::max(0.0, now - v_updated_at_);
    double delta = r.weight * (vnow - r.vcredit);
    if (delta <= 0.0) return 0.0;
    return std::min(delta, r.remaining);
  }
  double dt = now - r.credited_at;
  if (dt <= 0.0) return 0.0;
  return std::min(r.rate * dt, r.remaining);
}

double FluidResource::served(OwnerId owner) const {
  // Account the in-flight progress since each request's credit point
  // without mutating.  The owner index iterates in arrival order — the
  // same order (and the same float operations) as a full-list scan.
  double base = 0.0;
  if (auto it = served_.find(owner); it != served_.end()) {
    base = it->second.value();
  }
  SimTime now = sim_.now();
  if (auto oi = owner_index_.find(owner); oi != owner_index_.end()) {
    // avf-srclint: allow(src.float-accum the owner index lists requests in arrival order, matching the full-list scan it replaced)
    for (const Request* r : oi->second) base += inflight_progress(*r, now);
  }
  return base;
}

double FluidResource::total_served() const {
  double base = total_served_.value();
  SimTime now = sim_.now();
  // avf-srclint: allow(src.float-accum requests_ is arrival-ordered, so the summation order is pinned)
  for (const Request& r : requests_) base += inflight_progress(r, now);
  return base;
}

bool FluidResource::has_request(OwnerId owner) const {
  return owner_index_.find(owner) != owner_index_.end();
}

double FluidResource::allocated_rate() const {
  double sum = 0.0;
  for (const Request& r : requests_) {
    if (mode_ == Mode::kSparse && r.fair) {
      // avf-srclint: allow(src.float-accum requests_ is arrival-ordered, so the summation order is pinned)
      sum += mu_ * capacity_ * r.weight;
    } else {
      // avf-srclint: allow(src.float-accum requests_ is arrival-ordered, so the summation order is pinned)
      sum += r.rate;
    }
  }
  return sum;
}

}  // namespace avf::sim
