// Network link and endpoint messaging.
//
// A Link is full-duplex: each direction is an independent FluidResource
// (bytes/s) plus a fixed propagation latency.  Messages are injected under
// the sender's ShareSlot — which is how the sandbox throttles a process's
// bandwidth without touching the link itself — then delivered to the peer
// endpoint's mailbox one latency later.  Delivery preserves send order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/fluid_resource.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sim {

/// Fixed per-message framing overhead charged on the wire.
constexpr std::size_t kMessageHeaderBytes = 64;

struct Message {
  int kind = 0;
  std::vector<std::uint8_t> payload;
  SimTime sent_at = 0.0;       // stamped at injection start
  SimTime delivered_at = 0.0;  // stamped at mailbox deposit
  /// When non-zero, the link charges this many bytes instead of
  /// payload+header.  Lets a sender ship convenience bytes (e.g. an
  /// uncompressed payload whose compressed size is known from a cache)
  /// while the network behaves as if the real wire bytes crossed it.
  std::size_t wire_size_override = 0;

  std::size_t wire_size() const {
    return wire_size_override != 0 ? wire_size_override
                                   : payload.size() + kMessageHeaderBytes;
  }
};

class Link {
 public:
  Link(Simulator& sim, std::string name, double bandwidth_bps,
       double latency_s);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }
  double latency() const { return latency_; }
  double bandwidth() const { return forward_.capacity(); }

  /// Reconfigure raw link bandwidth (both directions).
  void set_bandwidth(double bps);

  FluidResource& forward() { return forward_; }
  FluidResource& backward() { return backward_; }

 private:
  Simulator& sim_;
  std::string name_;
  double latency_;
  FluidResource forward_;
  FluidResource backward_;
};

class Channel;

/// Verdict of a delivery-fault hook for one inbound message: drop it, or
/// hold it for `extra_delay` seconds before the mailbox deposit.  Messages
/// held for different delays overtake each other — that is how the testkit
/// produces reordered deliveries without a separate mechanism.
struct DeliveryFault {
  bool drop = false;
  SimTime extra_delay = 0.0;
};

/// One end of a channel.  Not movable once handed out: processes keep
/// references across suspension points.
class Endpoint {
 public:
  /// Inbound perturbation hook (fault injection).  Consulted when a message
  /// arrives at this endpoint after wire propagation; nullopt = deliver
  /// normally.  Pass nullptr to clear.
  using DeliveryFaultFn =
      std::function<std::optional<DeliveryFault>(const Message&)>;
  void set_delivery_fault(DeliveryFaultFn fn) { fault_ = std::move(fn); }
  /// Awaitable coroutine: inject `msg` into the link (consuming bandwidth
  /// under this endpoint's share slot) and schedule delivery at the peer.
  /// Completes when the last byte has been injected.
  Task<> send(Message msg);

  /// Awaitable: receive the next message.
  auto recv() { return inbox_.recv(); }
  std::optional<Message> try_recv() { return inbox_.try_recv(); }
  /// Messages physically queued, including ones reserved for coroutines
  /// already blocked in recv() — see Mailbox::size().
  std::size_t pending() const { return inbox_.size(); }
  /// Messages a fresh try_recv()/recv() could claim right now (pending
  /// minus reserved).
  std::size_t available() const { return inbox_.available(); }

  /// The slot the sandbox adjusts to throttle this endpoint's bandwidth.
  const ShareSlotPtr& share_slot() const { return slot_; }
  void set_share_slot(ShareSlotPtr slot);

  /// The link direction this endpoint injects into.
  FluidResource& out() { return *out_; }

  OwnerId owner() const { return owner_; }
  void set_owner(OwnerId owner) { owner_ = owner; }

  /// Total payload+framing bytes this endpoint has injected / received.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Deposit `msg` directly into this endpoint's inbox, bypassing the wire
  /// (no bandwidth consumed, no latency, no delivery-fault hook).  Testkit
  /// hook: lets harness code post local control messages (e.g. timeout
  /// markers) to a process blocked in recv().
  void inject(Message msg) { deposit(std::move(msg)); }

  /// Messages consumed / held by the delivery-fault hook so far.
  std::uint64_t deliveries_dropped() const { return deliveries_dropped_; }
  std::uint64_t deliveries_delayed() const { return deliveries_delayed_; }

 private:
  friend class Channel;
  Endpoint(Simulator& sim, FluidResource& out, double latency)
      : sim_(sim), out_(&out), latency_(latency), inbox_(sim),
        slot_(make_share_slot()) {}

  void deliver(Message msg);
  void deposit(Message msg);

  Simulator& sim_;
  FluidResource* out_;
  Endpoint* peer_ = nullptr;
  double latency_;
  Mailbox<Message> inbox_;
  ShareSlotPtr slot_;
  OwnerId owner_ = kNoOwner;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  DeliveryFaultFn fault_;
  std::uint64_t deliveries_dropped_ = 0;
  std::uint64_t deliveries_delayed_ = 0;
};

/// A bidirectional message channel across one link.
class Channel {
 public:
  explicit Channel(Link& link);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Endpoint on the "forward-sending" side (e.g. the client).
  Endpoint& a() { return *a_; }
  /// Endpoint on the opposite side (e.g. the server).
  Endpoint& b() { return *b_; }

 private:
  std::unique_ptr<Endpoint> a_;
  std::unique_ptr<Endpoint> b_;
};

}  // namespace avf::sim
