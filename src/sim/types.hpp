// Core simulator types shared across the sim/ module.
#pragma once

#include <cstdint>
#include <memory>

namespace avf::sim {

/// Simulated time, in seconds.  The whole framework is single-clock: there is
/// no wall-clock anywhere in the library (only the bench harnesses may time
/// real execution).
using SimTime = double;

/// A process's entitlement on one fluid resource: `cap` is the fraction of
/// the resource's capacity this consumer may use (the sandbox limit), and
/// `weight` its proportional-share weight when competing below the caps.
///
/// Slots are shared between the sandbox (which mutates them) and in-flight
/// resource requests (which read them at every reallocation), so they are
/// handed around as shared_ptr<ShareSlot>.
struct ShareSlot {
  double cap = 1.0;
  double weight = 1.0;
};

using ShareSlotPtr = std::shared_ptr<ShareSlot>;

inline ShareSlotPtr make_share_slot(double cap = 1.0, double weight = 1.0) {
  return std::make_shared<ShareSlot>(ShareSlot{cap, weight});
}

/// Opaque consumer identity used for per-consumer accounting on resources.
using OwnerId = std::uint64_t;

constexpr OwnerId kNoOwner = 0;

}  // namespace avf::sim
