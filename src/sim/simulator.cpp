#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::sim {

namespace {
/// Smallest far-tier chunk a migration splits off.  Keeps tiny workloads in
/// pure-heap behavior while letting big waves amortize the selection scan.
constexpr std::size_t kMinMigration = 64;
}  // namespace

namespace detail {
void report_detached_exception(Simulator& sim, std::exception_ptr e) {
  sim.record_exception(e);
}

void deregister_detached(Simulator& sim, void* frame) noexcept {
  sim.detached_done(frame);
}
}  // namespace detail

Simulator::~Simulator() {
  // Destroying a root frame runs the destructors of its locals, which in
  // turn destroy any awaited child Task frames — so only roots are tracked.
  // Destruction happens in spawn order: the tracking map is keyed on frame
  // *addresses*, so iterating it directly would destroy frames in
  // address-hash order — nondeterministic across runs (ASLR), and locals'
  // destructors can produce observable effects (log lines).
  std::vector<std::pair<std::uint64_t, void*>> frames;
  frames.reserve(detached_.size());
  // avf-srclint: allow(src.unordered-iteration the hash order is erased by the sort below; destruction runs in spawn order)
  for (const auto& [frame, seq] : detached_) frames.emplace_back(seq, frame);
  detached_.clear();
  std::sort(frames.begin(), frames.end());
  for (const auto& [seq, frame] : frames) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
}

void EventHandle::cancel() {
  auto rec = rec_.lock();
  if (!rec || rec->cancelled || rec->fired) return;
  rec->cancelled = true;
  rec->fn = nullptr;  // release captured state eagerly
  if (rec->sim != nullptr) rec->sim->on_cancelled(*rec);
}

bool EventHandle::pending() const {
  auto rec = rec_.lock();
  return rec != nullptr && !rec->cancelled && !rec->fired;
}

void Simulator::on_cancelled(EventHandle::Record& rec) {
  if (rec.far_index >= 0) {
    remove_far(rec);
    return;
  }
  // In the near heap: leave a tombstone, reclaim in bulk when they
  // outnumber live entries.
  ++near_cancelled_;
  maybe_compact_near();
}

void Simulator::remove_far(EventHandle::Record& rec) {
  std::size_t i = static_cast<std::size_t>(rec.far_index);
  rec.far_index = -1;
  if (i + 1 != far_.size()) {
    far_[i] = std::move(far_.back());
    far_[i]->far_index = static_cast<std::int64_t>(i);
  }
  far_.pop_back();
  ++far_removals_;
}

void Simulator::maybe_compact_near() {
  if (near_cancelled_ * 2 <= near_.size()) return;
  std::erase_if(near_, [](const NearEntry& e) { return e.rec->cancelled; });
  std::make_heap(near_.begin(), near_.end(), FiresAfter{});
  near_cancelled_ = 0;
  ++compactions_;
}

EventHandle Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    throw std::invalid_argument(
        avf::util::format("negative event delay: {}", delay));
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument(avf::util::format(
        "event scheduled in the past: {} < now {}", when, now_));
  }
  auto rec = std::make_shared<EventHandle::Record>();
  rec->fn = std::move(fn);
  rec->time = when;
  rec->seq = next_seq_++;
  rec->sim = this;
  if (when > max_event_time_) max_event_time_ = when;
  // New events carry a larger seq than any horizon pivot, so the key
  // comparison against the horizon reduces to the time alone.
  if (!far_is_everything_ && when < horizon_time_) {
    near_.push_back(NearEntry{when, rec->seq, rec});
    std::push_heap(near_.begin(), near_.end(), FiresAfter{});
  } else {
    rec->far_index = static_cast<std::int64_t>(far_.size());
    far_.push_back(rec);
  }
  return EventHandle(rec);
}

void Simulator::prune_near_top() {
  while (!near_.empty() && near_.front().rec->cancelled) {
    std::pop_heap(near_.begin(), near_.end(), FiresAfter{});
    near_.pop_back();
    --near_cancelled_;
  }
}

bool Simulator::ensure_next_live() {
  for (;;) {
    prune_near_top();
    if (!near_.empty()) return true;
    if (far_.empty()) return false;
    migrate_from_far();  // far entries are never tombstones
  }
}

void Simulator::migrate_from_far() {
  auto key_less = [](const std::shared_ptr<EventHandle::Record>& a,
                     const std::shared_ptr<EventHandle::Record>& b) {
    if (a->time != b->time) return a->time < b->time;
    return a->seq < b->seq;
  };
  std::size_t k =
      std::min(far_.size(), std::max(kMinMigration, far_.size() / 4));
  if (k < far_.size()) {
    std::nth_element(far_.begin(),
                     far_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     far_.end(), key_less);
    horizon_time_ = far_[k - 1]->time;
    horizon_seq_ = far_[k - 1]->seq;
  } else {
    auto max_it = std::max_element(far_.begin(), far_.end(), key_less);
    horizon_time_ = (*max_it)->time;
    horizon_seq_ = (*max_it)->seq;
  }
  far_is_everything_ = false;
  near_.reserve(near_.size() + k);
  for (std::size_t i = 0; i < k; ++i) {
    far_[i]->far_index = -1;
    SimTime t = far_[i]->time;
    std::uint64_t s = far_[i]->seq;
    near_.push_back(NearEntry{t, s, std::move(far_[i])});
  }
  far_.erase(far_.begin(), far_.begin() + static_cast<std::ptrdiff_t>(k));
  for (std::size_t i = 0; i < far_.size(); ++i) {
    far_[i]->far_index = static_cast<std::int64_t>(i);
  }
  std::make_heap(near_.begin(), near_.end(), FiresAfter{});
}

void Simulator::spawn(Task<> task) {
  std::coroutine_handle<> h = task.release(*this);
  detached_.emplace(h.address(), next_spawn_seq_++);
  schedule(0.0, [h] { h.resume(); });
}

void Simulator::record_exception(std::exception_ptr e) {
  if (!pending_exception_) pending_exception_ = e;
}

void Simulator::fire_next() {
  std::pop_heap(near_.begin(), near_.end(), FiresAfter{});
  NearEntry entry = std::move(near_.back());
  near_.pop_back();
  now_ = entry.time;
  ++events_processed_;
  entry.rec->fired = true;  // cancel() during the callback is a no-op
  // Move the callback out so state captured by it dies with this scope even
  // if the record lingers in an EventHandle.
  std::function<void()> fn = std::move(entry.rec->fn);
  fn();
}

void Simulator::rethrow_if_failed() {
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Simulator::step() {
  if (!ensure_next_live()) return false;
  fire_next();
  rethrow_if_failed();
  return true;
}

void Simulator::run() {
  while (ensure_next_live()) {
    fire_next();
    rethrow_if_failed();
  }
  // The old single-queue implementation popped every cancelled entry in
  // time order, so a drained run left now() at the largest time ever
  // scheduled — tombstones included.  Real removal skips those pops;
  // restore the identical final clock explicitly.
  if (max_event_time_ > now_) now_ = max_event_time_;
}

void Simulator::run_until(SimTime t) {
  if (t < now_) {
    throw std::invalid_argument(
        avf::util::format("run_until into the past: {} < now {}", t, now_));
  }
  while (ensure_next_live() && near_.front().time <= t) {
    fire_next();
    rethrow_if_failed();
  }
  now_ = t;
}

}  // namespace avf::sim
