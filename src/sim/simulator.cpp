#include "sim/simulator.hpp"

#include "util/fmt.hpp"
#include <stdexcept>

namespace avf::sim {

namespace detail {
void report_detached_exception(Simulator& sim, std::exception_ptr e) {
  sim.record_exception(e);
}

void deregister_detached(Simulator& sim, void* frame) noexcept {
  sim.detached_done(frame);
}
}  // namespace detail

Simulator::~Simulator() {
  // Destroying a root frame runs the destructors of its locals, which in
  // turn destroy any awaited child Task frames — so only roots are tracked.
  std::unordered_set<void*> frames = std::move(detached_);
  for (void* frame : frames) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
}

void EventHandle::cancel() {
  if (auto rec = rec_.lock()) {
    rec->cancelled = true;
    rec->fn = nullptr;  // release captured state eagerly
  }
}

bool EventHandle::pending() const {
  auto rec = rec_.lock();
  return rec != nullptr && !rec->cancelled;
}

EventHandle Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    throw std::invalid_argument(
        avf::util::format("negative event delay: {}", delay));
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument(avf::util::format(
        "event scheduled in the past: {} < now {}", when, now_));
  }
  auto rec = std::make_shared<EventHandle::Record>();
  rec->fn = std::move(fn);
  queue_.push(QueueEntry{when, next_seq_++, rec});
  return EventHandle(rec);
}

void Simulator::spawn(Task<> task) {
  std::coroutine_handle<> h = task.release(*this);
  detached_.insert(h.address());
  schedule(0.0, [h] { h.resume(); });
}

void Simulator::record_exception(std::exception_ptr e) {
  if (!pending_exception_) pending_exception_ = e;
}

void Simulator::fire_next() {
  QueueEntry entry = queue_.top();
  queue_.pop();
  now_ = entry.time;
  if (entry.rec->cancelled) return;
  ++events_processed_;
  // Move the callback out so state captured by it dies with this scope even
  // if the record lingers in an EventHandle.
  std::function<void()> fn = std::move(entry.rec->fn);
  fn();
}

void Simulator::rethrow_if_failed() {
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  fire_next();
  rethrow_if_failed();
  return true;
}

void Simulator::run() {
  while (!queue_.empty()) {
    fire_next();
    rethrow_if_failed();
  }
}

void Simulator::run_until(SimTime t) {
  if (t < now_) {
    throw std::invalid_argument(
        avf::util::format("run_until into the past: {} < now {}", t, now_));
  }
  while (!queue_.empty() && queue_.top().time <= t) {
    fire_next();
    rethrow_if_failed();
  }
  now_ = t;
}

}  // namespace avf::sim
