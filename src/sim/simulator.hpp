// Discrete-event simulator kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (FIFO via a sequence number).  Simulated processes are
// coroutines (see task.hpp); the simulator only ever resumes them from its
// event loop, never reentrantly, so process code observes plain sequential
// semantics at each timestamp.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "sim/types.hpp"

namespace avf::sim {

/// Handle to a scheduled event; allows cancellation.  Default-constructed
/// handles are inert.  Cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool pending() const;

  struct Record {
    std::function<void()> fn;
    bool cancelled = false;
  };

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::weak_ptr<Record> rec_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  /// Destroys the frames of spawned processes still suspended mid-await —
  /// a completed detached frame self-destroys at final suspend, but one the
  /// run never resumed again would otherwise be lost when the event queue
  /// (holding the only handle to it) dies.
  ~Simulator();

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(SimTime delay, std::function<void()> fn);
  /// Schedule at an absolute time >= now().
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Launch a detached process coroutine; its body starts at the current
  /// time, after already-queued events at this timestamp.
  void spawn(Task<> task);

  /// Run until the event queue drains; throws the first exception escaping a
  /// detached process.
  void run();
  /// Run events with time <= `t`, then set now() = t.
  void run_until(SimTime t);
  /// Execute a single event; returns false when the queue is empty.
  bool step();

  /// Awaitable: suspend the calling process for `dt` seconds.
  ///   co_await sim.delay(0.5);
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable: yield to other events queued at the current timestamp.
  auto yield() { return delay(0.0); }

  /// Resume `h` via a zero-delay event — the only sanctioned way for
  /// non-process code (resources, mailboxes) to wake a process.
  void resume_soon(std::coroutine_handle<> h) {
    schedule(0.0, [h] { h.resume(); });
  }

  /// Number of events processed so far (for micro-benchmarks/tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Allocate a fresh consumer identity for resource accounting.
  OwnerId new_owner_id() { return ++last_owner_id_; }

  // Internal: detached-process exception reporting (see task.hpp).
  void record_exception(std::exception_ptr e);
  // Internal: a detached frame completed and is about to self-destroy.
  void detached_done(void* frame) noexcept { detached_.erase(frame); }

 private:
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::Record> rec;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Fire the next event; the caller has checked the queue is non-empty.
  void fire_next();
  void rethrow_if_failed();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  OwnerId last_owner_id_ = kNoOwner;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::exception_ptr pending_exception_;
  std::unordered_set<void*> detached_;  // live spawned frames (see ~Simulator)
};

}  // namespace avf::sim
