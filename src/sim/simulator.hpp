// Discrete-event simulator kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (FIFO via a sequence number).  Simulated processes are
// coroutines (see task.hpp); the simulator only ever resumes them from its
// event loop, never reentrantly, so process code observes plain sequential
// semantics at each timestamp.
//
// The event queue is a two-tier ladder: a binary min-heap over the events
// nearest in (time, seq) order and an unsorted "far" tier for everything
// beyond the current horizon.  Scheduling into the far tier is O(1); when
// the near heap drains, the next chunk of the far tier is split off with a
// selection pass and heapified.  Cancellation is *real* removal: a far
// event is swap-removed immediately, and a near event leaves a tombstone
// that a compaction pass reclaims once tombstones outnumber live entries —
// so the heavy cancel/reschedule traffic fluid resources generate can no
// longer grow the queue without bound (the previous single priority_queue
// kept every tombstone until its timestamp drained).  The (time, seq) fire
// order is exactly the total order the old queue produced.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/task.hpp"
#include "sim/types.hpp"

namespace avf::sim {

class Simulator;

/// Handle to a scheduled event; allows cancellation.  Default-constructed
/// handles are inert.  Cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool pending() const;

  struct Record {
    std::function<void()> fn;
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    bool cancelled = false;
    bool fired = false;
    /// Position in the owning simulator's far tier; -1 while in the near
    /// heap (or already popped).  Lets cancel() remove far events in O(1).
    std::int64_t far_index = -1;
    Simulator* sim = nullptr;
  };

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::weak_ptr<Record> rec_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  /// Destroys the frames of spawned processes still suspended mid-await —
  /// a completed detached frame self-destroys at final suspend, but one the
  /// run never resumed again would otherwise be lost when the event queue
  /// (holding the only handle to it) dies.
  ~Simulator();

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(SimTime delay, std::function<void()> fn);
  /// Schedule at an absolute time >= now().
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Launch a detached process coroutine; its body starts at the current
  /// time, after already-queued events at this timestamp.
  void spawn(Task<> task);

  /// Run until the event queue drains; throws the first exception escaping a
  /// detached process.
  void run();
  /// Run events with time <= `t`, then set now() = t.
  void run_until(SimTime t);
  /// Execute the next live event; returns false when none remain.
  bool step();

  /// Awaitable: suspend the calling process for `dt` seconds.
  ///   co_await sim.delay(0.5);
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable: yield to other events queued at the current timestamp.
  auto yield() { return delay(0.0); }

  /// Resume `h` via a zero-delay event — the only sanctioned way for
  /// non-process code (resources, mailboxes) to wake a process.
  void resume_soon(std::coroutine_handle<> h) {
    schedule(0.0, [h] { h.resume(); });
  }

  /// Number of events processed so far (for micro-benchmarks/tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Live (not cancelled) events currently queued.
  std::size_t queued_events() const {
    return near_.size() - near_cancelled_ + far_.size();
  }
  /// Physical queue entries, tombstones included.  Bounded relative to
  /// queued_events() by the compaction rule: at most half of the near heap
  /// is ever tombstones.
  std::size_t queue_entries() const { return near_.size() + far_.size(); }
  /// Near-heap tombstone reclamation passes run so far.
  std::uint64_t compactions() const { return compactions_; }
  /// Far-tier cancellations removed in O(1) without leaving a tombstone.
  std::uint64_t far_removals() const { return far_removals_; }

  /// Allocate a fresh consumer identity for resource accounting.
  OwnerId new_owner_id() { return ++last_owner_id_; }

  // Internal: detached-process exception reporting (see task.hpp).
  void record_exception(std::exception_ptr e);
  // Internal: a detached frame completed and is about to self-destroy.
  void detached_done(void* frame) noexcept { detached_.erase(frame); }
  // Internal: EventHandle::cancel() routes here for real removal.
  void on_cancelled(EventHandle::Record& rec);

 private:
  struct NearEntry {
    SimTime time;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::Record> rec;
  };
  /// Min-heap comparator: true when `a` fires after `b`.
  struct FiresAfter {
    bool operator()(const NearEntry& a, const NearEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pop cancelled entries off the near-heap top.
  void prune_near_top();
  /// Make the next live event the near-heap top; false when drained.
  bool ensure_next_live();
  /// Split the nearest chunk of the far tier into the (empty) near heap
  /// and advance the horizon to the largest migrated key.
  void migrate_from_far();
  /// Swap-remove a cancelled record from the far tier.
  void remove_far(EventHandle::Record& rec);
  /// Rebuild the near heap without tombstones once they outnumber live
  /// entries (the >1/2 compaction rule).
  void maybe_compact_near();

  /// Fire the next event; the caller has checked ensure_next_live().
  void fire_next();
  void rethrow_if_failed();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  OwnerId last_owner_id_ = kNoOwner;

  std::vector<NearEntry> near_;  // binary heap under FiresAfter
  std::size_t near_cancelled_ = 0;
  std::vector<std::shared_ptr<EventHandle::Record>> far_;
  /// Events with key <= (horizon_time_, horizon_seq_) go near; the far
  /// tier holds strictly greater keys only.
  SimTime horizon_time_ = -1.0;  // before any valid time; see schedule_at
  std::uint64_t horizon_seq_ = 0;
  bool far_is_everything_ = true;  // no horizon picked yet

  /// Largest time ever scheduled.  run() leaves now() here once drained —
  /// the same final clock the old queue produced by popping every
  /// tombstone in time order.
  SimTime max_event_time_ = 0.0;

  std::uint64_t compactions_ = 0;
  std::uint64_t far_removals_ = 0;

  std::exception_ptr pending_exception_;
  // Live spawned frames (see ~Simulator), each tagged with its spawn
  // sequence number so teardown destroys them in spawn order.  Iterating
  // the hash map directly would walk pointer-valued keys in address order —
  // nondeterministic across runs, and frame destruction runs coroutine
  // locals' destructors, which may log or touch shared state.
  std::unordered_map<void*, std::uint64_t> detached_;
  std::uint64_t next_spawn_seq_ = 0;
};

}  // namespace avf::sim
