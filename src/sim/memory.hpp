// Per-host physical memory accounting.
//
// The paper's sandbox bounds physical memory by flipping page-protection
// bits; behaviorally that means an application is denied (or delayed on)
// allocations beyond its cap.  We model the accounting side: reservations
// against host capacity and per-owner caps, RAII release, and failure when a
// cap would be exceeded.  The experiments keep memory fixed (§7.1), so no
// paging-delay model is attached, but usage is tracked so monitors can
// report it.
#pragma once

#include <cstdint>
#include "util/fmt.hpp"
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "sim/types.hpp"

namespace avf::sim {

class MemoryResource;

/// RAII hold on a memory reservation.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryReservation&& other) noexcept;
  MemoryReservation& operator=(MemoryReservation&& other) noexcept;
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation();

  std::uint64_t bytes() const { return bytes_; }
  bool valid() const { return resource_ != nullptr; }
  void release();

 private:
  friend class MemoryResource;
  MemoryReservation(MemoryResource* resource, OwnerId owner,
                    std::uint64_t bytes)
      : resource_(resource), owner_(owner), bytes_(bytes) {}

  MemoryResource* resource_ = nullptr;
  OwnerId owner_ = kNoOwner;
  std::uint64_t bytes_ = 0;
};

class MemoryResource {
 public:
  MemoryResource(std::string name, std::uint64_t capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {}

  MemoryResource(const MemoryResource&) = delete;
  MemoryResource& operator=(const MemoryResource&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t available() const { return capacity_ - used_; }
  std::uint64_t used_by(OwnerId owner) const;

  /// Cap an owner's total usage in bytes (0 = evict-everything cap;
  /// remove_cap() restores the unlimited default).
  void set_cap(OwnerId owner, std::uint64_t bytes) { caps_[owner] = bytes; }
  void remove_cap(OwnerId owner) { caps_.erase(owner); }

  /// Try to reserve; returns an invalid reservation when the host or the
  /// owner's cap would be exceeded.
  [[nodiscard]] MemoryReservation try_reserve(OwnerId owner,
                                              std::uint64_t bytes);

  /// Reserve or throw std::runtime_error.
  [[nodiscard]] MemoryReservation reserve(OwnerId owner, std::uint64_t bytes);

 private:
  friend class MemoryReservation;
  void release(OwnerId owner, std::uint64_t bytes);

  std::string name_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unordered_map<OwnerId, std::uint64_t> per_owner_;
  std::unordered_map<OwnerId, std::uint64_t> caps_;
};

}  // namespace avf::sim
