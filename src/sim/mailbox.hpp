// Unbounded process mailbox: the rendezvous primitive between simulated
// processes.  `recv()` suspends the caller until an item arrives; items and
// waiters are both FIFO, preserving determinism.
//
// Invariant: an item pushed while receivers are queued is immediately
// *reserved* for the oldest receiver (whose wake-up is scheduled); a recv()
// only completes synchronously on unreserved items.  Hence queued waiters
// and unreserved items never coexist, and delivery order is strict FIFO on
// both sides.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"

namespace avf::sim {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(sim) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit an item; wakes the oldest waiter if any.
  void push(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      ++reserved_;
      sim_.resume_soon(h);
    }
  }

  /// Awaitable: receive the oldest item, suspending if none is available.
  auto recv() {
    struct Awaiter {
      Mailbox& box;
      bool suspended = false;
      bool await_ready() const noexcept {
        return box.items_.size() > box.reserved_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        box.waiters_.push_back(h);
      }
      T await_resume() {
        if (suspended) {
          assert(box.reserved_ > 0);
          --box.reserved_;
        }
        assert(!box.items_.empty());
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this};
  }

  /// Non-blocking poll; only sees unreserved items.
  std::optional<T> try_recv() {
    if (items_.size() <= reserved_) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Items physically queued, *including* ones already reserved for queued
  /// receivers.  A poller watching a mailbox that other coroutines recv()
  /// from should use available() — size() > 0 does not imply try_recv()
  /// will succeed.
  std::size_t size() const { return items_.size(); }
  /// empty() mirrors size(): false can still mean nothing is claimable.
  bool empty() const { return items_.empty(); }
  /// Items a new receiver could claim right now (queued minus reserved) —
  /// exactly the count try_recv() sees.
  std::size_t available() const { return items_.size() - reserved_; }
  std::size_t waiting_receivers() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t reserved_ = 0;
};

}  // namespace avf::sim
