// Network: the container wiring hosts and links into an execution
// environment (the paper's `execution_env` annotation, §4).  Owns all hosts,
// links, and channels so application code deals only in references.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace avf::sim {

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& simulator() { return sim_; }

  /// Create a host; names must be unique.
  Host& add_host(const std::string& name, double cpu_ops_per_sec,
                 std::uint64_t memory_bytes);

  /// Look up a host by name; throws std::out_of_range if absent.
  Host& host(const std::string& name);

  /// Create a full-duplex link between two hosts.
  Link& connect(Host& a, Host& b, double bandwidth_bps, double latency_s);

  /// Create a message channel over `link`; the Network keeps it alive.
  Channel& open_channel(Link& link);

  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  Simulator& sim_;
  std::unordered_map<std::string, std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace avf::sim
