#include "sim/memory.hpp"

namespace avf::sim {

MemoryReservation::MemoryReservation(MemoryReservation&& other) noexcept
    : resource_(other.resource_), owner_(other.owner_), bytes_(other.bytes_) {
  other.resource_ = nullptr;
}

MemoryReservation& MemoryReservation::operator=(
    MemoryReservation&& other) noexcept {
  if (this != &other) {
    release();
    resource_ = other.resource_;
    owner_ = other.owner_;
    bytes_ = other.bytes_;
    other.resource_ = nullptr;
  }
  return *this;
}

MemoryReservation::~MemoryReservation() { release(); }

void MemoryReservation::release() {
  if (resource_ != nullptr) {
    resource_->release(owner_, bytes_);
    resource_ = nullptr;
  }
}

std::uint64_t MemoryResource::used_by(OwnerId owner) const {
  auto it = per_owner_.find(owner);
  return it == per_owner_.end() ? 0 : it->second;
}

MemoryReservation MemoryResource::try_reserve(OwnerId owner,
                                              std::uint64_t bytes) {
  if (used_ + bytes > capacity_) return {};
  if (auto it = caps_.find(owner); it != caps_.end()) {
    if (used_by(owner) + bytes > it->second) return {};
  }
  used_ += bytes;
  per_owner_[owner] += bytes;
  return MemoryReservation(this, owner, bytes);
}

MemoryReservation MemoryResource::reserve(OwnerId owner, std::uint64_t bytes) {
  MemoryReservation r = try_reserve(owner, bytes);
  if (!r.valid()) {
    throw std::runtime_error(avf::util::format(
        "memory {}: cannot reserve {} bytes (used {}/{}, owner {} uses {})",
        name_, bytes, used_, capacity_, owner, used_by(owner)));
  }
  return r;
}

void MemoryResource::release(OwnerId owner, std::uint64_t bytes) {
  used_ -= bytes;
  auto it = per_owner_.find(owner);
  if (it != per_owner_.end()) {
    it->second -= bytes;
    if (it->second == 0) per_owner_.erase(it);
  }
}

}  // namespace avf::sim
