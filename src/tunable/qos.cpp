#include "tunable/qos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::tunable {

bool at_least_as_good(double a, double b, Direction dir) {
  return dir == Direction::kLowerBetter ? a <= b : a >= b;
}

double QosVector::get(const std::string& metric) const {
  auto it = values_.find(metric);
  if (it == values_.end()) {
    throw std::out_of_range(util::format("no QoS metric: {}", metric));
  }
  return it->second;
}

std::optional<double> QosVector::try_get(const std::string& metric) const {
  auto it = values_.find(metric);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void MetricSchema::add(const std::string& name, Direction direction,
                       std::source_location where) {
  if (has(name)) {
    throw std::invalid_argument(util::format("duplicate metric: {}", name));
  }
  metrics_.push_back(MetricDef{name, direction, where});
}

bool MetricSchema::has(const std::string& name) const {
  return std::any_of(metrics_.begin(), metrics_.end(),
                     [&](const MetricDef& m) { return m.name == name; });
}

const MetricDef& MetricSchema::metric(const std::string& name) const {
  for (const MetricDef& m : metrics_) {
    if (m.name == name) return m;
  }
  throw std::out_of_range(util::format("no such metric: {}", name));
}

std::vector<std::string> MetricSchema::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const MetricDef& m : metrics_) out.push_back(m.name);
  return out;
}

bool MetricSchema::dominates(const QosVector& a, const QosVector& b) const {
  bool strictly = false;
  for (const MetricDef& m : metrics_) {
    double va = a.get(m.name);
    double vb = b.get(m.name);
    if (!at_least_as_good(va, vb, m.direction)) return false;
    if (va != vb) strictly = true;
  }
  return strictly;
}

bool MetricSchema::equivalent(const QosVector& a, const QosVector& b,
                              double epsilon) const {
  for (const MetricDef& m : metrics_) {
    double va = a.get(m.name);
    double vb = b.get(m.name);
    double scale = std::max({std::abs(va), std::abs(vb), 1.0});
    if (std::abs(va - vb) > epsilon * scale) return false;
  }
  return true;
}

}  // namespace avf::tunable
