// User preference constraints (paper §6): "each user preference constraint
// is expressed as value ranges on a subset of output quality metrics and is
// accompanied with an objective function to be optimized. ... Multiple user
// preference constraints can be specified. The system examines them in
// decreasing order of preference."
//
// Following the paper's simplification, the objective is maximizing or
// minimizing a single quality metric.
//
// Preferences live in the tunable layer (not adapt) because they are part
// of the application's declared specification: the spec linter (src/lint)
// cross-checks them against the metric schema before any run-time component
// exists.  adapt/preferences.hpp re-exports these names for existing code.
#pragma once

#include <limits>
#include <source_location>
#include <string>
#include <vector>

#include "tunable/qos.hpp"

namespace avf::tunable {

struct MetricRange {
  std::string metric;
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();

  bool contains(double value) const { return value >= min && value <= max; }
};

struct UserPreference {
  std::string name;
  std::vector<MetricRange> constraints;
  std::string objective_metric;
  bool maximize = false;
  /// Declaration site, captured automatically at construction (or at the
  /// minimize()/maximize_metric() call for built preferences).
  std::source_location where = std::source_location::current();

  /// All constraints satisfied by `quality`.
  bool satisfied_by(const QosVector& quality) const;

  /// True when `a` is a better objective value than `b`.
  bool better(double a, double b) const { return maximize ? a > b : a < b; }
};

/// Ordered by decreasing preference: the scheduler tries [0] first and
/// falls through when no configuration can satisfy it.
using PreferenceList = std::vector<UserPreference>;

// Convenience builders used by examples and benchmarks.
UserPreference minimize(
    const std::string& metric, std::string name = {},
    std::source_location where = std::source_location::current());
UserPreference maximize_metric(
    const std::string& metric, std::string name = {},
    std::source_location where = std::source_location::current());

}  // namespace avf::tunable
