#include "tunable/app_spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::tunable {

void AppSpec::add_resource_axis(const std::string& axis,
                                std::source_location where) {
  if (std::find(axes_.begin(), axes_.end(), axis) != axes_.end()) {
    throw std::invalid_argument(
        util::format("duplicate resource axis: {}", axis));
  }
  axes_.push_back(axis);
  axis_sites_.push_back(where);
}

std::vector<const TaskSpec*> AppSpec::active_tasks(
    const ConfigPoint& config) const {
  std::vector<const TaskSpec*> out;
  for (const TaskSpec& t : tasks_) {
    if (!t.guard || t.guard(config)) out.push_back(&t);
  }
  return out;
}

}  // namespace avf::tunable
