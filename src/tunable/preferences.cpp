#include "tunable/preferences.hpp"

namespace avf::tunable {

bool UserPreference::satisfied_by(const QosVector& quality) const {
  for (const MetricRange& range : constraints) {
    auto value = quality.try_get(range.metric);
    if (!value || !range.contains(*value)) return false;
  }
  return true;
}

UserPreference minimize(const std::string& metric, std::string name,
                        std::source_location where) {
  UserPreference p;
  p.name = name.empty() ? "minimize " + metric : std::move(name);
  p.objective_metric = metric;
  p.maximize = false;
  p.where = where;
  return p;
}

UserPreference maximize_metric(const std::string& metric, std::string name,
                               std::source_location where) {
  UserPreference p;
  p.name = name.empty() ? "maximize " + metric : std::move(name);
  p.objective_metric = metric;
  p.maximize = true;
  p.where = where;
  return p;
}

}  // namespace avf::tunable
