// Control parameters and configuration points — the "knobs" of a tunable
// application (paper §4): each parameter has a finite integer domain; a
// ConfigPoint assigns one value to every parameter; the ConfigSpace
// enumerates the cartesian product, filtered by guard predicates (the
// guards the paper attaches to task/transition constructs).
//
// Every registration call captures its std::source_location so that the
// spec linter (src/lint) can point diagnostics at the declaration site —
// the moral equivalent of the preprocessor reporting the offending
// annotation's file and line.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <source_location>
#include <string>
#include <vector>

namespace avf::tunable {

/// One control parameter: name + the discrete values it may take.
struct ParamDomain {
  std::string name;
  std::vector<int> values;
  /// Where add_parameter was called (linter diagnostics).
  std::source_location where;
};

/// A full assignment of values to control parameters.  Comparable and
/// usable as a map key; `key()` is the canonical "a=1,b=2" rendering used
/// by the performance database.
class ConfigPoint {
 public:
  ConfigPoint() = default;
  explicit ConfigPoint(std::map<std::string, int> values)
      : values_(std::move(values)) {}

  /// Value of parameter `name`; throws std::out_of_range if absent.
  int get(const std::string& name) const;
  std::optional<int> try_get(const std::string& name) const;
  void set(const std::string& name, int value) { values_[name] = value; }

  /// Returns a copy with one parameter changed.
  ConfigPoint with(const std::string& name, int value) const;

  const std::map<std::string, int>& values() const { return values_; }
  bool empty() const { return values_.empty(); }

  std::string key() const;
  /// Parse a key() rendering ("a=1,b=2").  Throws std::invalid_argument
  /// with a descriptive message on malformed input: missing or misplaced
  /// '=', empty parameter name, non-numeric or out-of-range value,
  /// trailing characters after the number, duplicate parameter, empty
  /// item, or trailing separator.
  static ConfigPoint parse(const std::string& key);

  auto operator<=>(const ConfigPoint&) const = default;

 private:
  std::map<std::string, int> values_;
};

/// Predicate restricting valid configurations.
struct Guard {
  std::string description;
  std::function<bool(const ConfigPoint&)> predicate;
  /// Where add_guard was called (linter diagnostics).
  std::source_location where;
};

class ConfigSpace {
 public:
  /// Declare a parameter; names must be unique, domains non-empty.
  void add_parameter(
      const std::string& name, std::vector<int> values,
      std::source_location where = std::source_location::current());

  void add_guard(std::string description,
                 std::function<bool(const ConfigPoint&)> predicate,
                 std::source_location where = std::source_location::current());

  const std::vector<ParamDomain>& parameters() const { return params_; }
  const ParamDomain& parameter(const std::string& name) const;
  bool has_parameter(const std::string& name) const;
  const std::vector<Guard>& guards() const { return guards_; }

  /// All guard-satisfying configurations, in lexicographic domain order.
  std::vector<ConfigPoint> enumerate() const;

  /// Whether `point` assigns a valid domain value to every parameter and
  /// passes all guards.
  bool valid(const ConfigPoint& point) const;

  /// Size of the unguarded cartesian product (saturating; 0 when no
  /// parameters are declared).  raw_size() > 0 with an empty enumerate()
  /// means the guards filtered out every point — a reportable state the
  /// linter flags rather than a silent-empty space.
  std::size_t raw_size() const;

  /// At least one configuration passes every guard.  Equivalent to
  /// !enumerate().empty() but stops at the first admissible point.
  bool feasible() const;

  std::size_t parameter_count() const { return params_.size(); }
  std::size_t guard_count() const { return guards_.size(); }

 private:
  std::vector<ParamDomain> params_;
  std::vector<Guard> guards_;
};

}  // namespace avf::tunable
