// Application-specific quality metrics (the paper's QoS_metric construct).
// Each metric declares a direction so that values are comparable ("we
// require that different values of the same quality metric can be compared
// with each other", §4.1) — which also drives dominance pruning in the
// performance database.
#pragma once

#include <map>
#include <optional>
#include <source_location>
#include <string>
#include <vector>

namespace avf::tunable {

enum class Direction {
  kLowerBetter,   // e.g. transmit_time, response_time
  kHigherBetter,  // e.g. resolution
};

struct MetricDef {
  std::string name;
  Direction direction = Direction::kLowerBetter;
  /// Where MetricSchema::add was called (linter diagnostics).
  std::source_location where;
};

/// `a` is at least as good as `b` for a metric of direction `dir`.
bool at_least_as_good(double a, double b, Direction dir);

/// A measured/predicted value for each metric.
class QosVector {
 public:
  QosVector() = default;

  double get(const std::string& metric) const;
  std::optional<double> try_get(const std::string& metric) const;
  void set(const std::string& metric, double value) {
    values_[metric] = value;
  }

  const std::map<std::string, double>& values() const { return values_; }
  bool empty() const { return values_.empty(); }

  bool operator==(const QosVector&) const = default;

 private:
  std::map<std::string, double> values_;
};

/// Declared metric schema for an application.
class MetricSchema {
 public:
  void add(const std::string& name, Direction direction,
           std::source_location where = std::source_location::current());

  const std::vector<MetricDef>& metrics() const { return metrics_; }
  const MetricDef& metric(const std::string& name) const;
  bool has(const std::string& name) const;
  std::vector<std::string> names() const;

  /// `a` dominates `b`: at least as good on every declared metric, strictly
  /// better on at least one.
  bool dominates(const QosVector& a, const QosVector& b) const;

  /// All metrics equal within `epsilon` (relative where magnitudes allow).
  bool equivalent(const QosVector& a, const QosVector& b,
                  double epsilon) const;

 private:
  std::vector<MetricDef> metrics_;
};

}  // namespace avf::tunable
