#include "tunable/config.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::tunable {

int ConfigPoint::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::out_of_range(util::format("no control parameter: {}", name));
  }
  return it->second;
}

std::optional<int> ConfigPoint::try_get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

ConfigPoint ConfigPoint::with(const std::string& name, int value) const {
  ConfigPoint copy = *this;
  copy.set(name, value);
  return copy;
}

std::string ConfigPoint::key() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!out.empty()) out += ',';
    out += util::format("{}={}", name, value);
  }
  return out;
}

ConfigPoint ConfigPoint::parse(const std::string& key) {
  ConfigPoint point;
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t comma = key.find(',', pos);
    if (comma == std::string::npos) comma = key.size();
    std::string_view item(key.data() + pos, comma - pos);
    std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument(
          util::format("bad config key item: {}", std::string(item)));
    }
    std::string name(item.substr(0, eq));
    int value = std::stoi(std::string(item.substr(eq + 1)));
    point.set(name, value);
    pos = comma + 1;
  }
  return point;
}

void ConfigSpace::add_parameter(const std::string& name,
                                std::vector<int> values) {
  if (values.empty()) {
    throw std::invalid_argument(
        util::format("parameter {} has empty domain", name));
  }
  if (has_parameter(name)) {
    throw std::invalid_argument(util::format("duplicate parameter: {}", name));
  }
  params_.push_back(ParamDomain{name, std::move(values)});
}

void ConfigSpace::add_guard(std::string description,
                            std::function<bool(const ConfigPoint&)> predicate) {
  guards_.push_back(Guard{std::move(description), std::move(predicate)});
}

bool ConfigSpace::has_parameter(const std::string& name) const {
  return std::any_of(params_.begin(), params_.end(),
                     [&](const ParamDomain& p) { return p.name == name; });
}

const ParamDomain& ConfigSpace::parameter(const std::string& name) const {
  for (const ParamDomain& p : params_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range(util::format("no such parameter: {}", name));
}

std::vector<ConfigPoint> ConfigSpace::enumerate() const {
  std::vector<ConfigPoint> out;
  if (params_.empty()) return out;
  std::vector<std::size_t> idx(params_.size(), 0);
  for (;;) {
    ConfigPoint point;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      point.set(params_[i].name, params_[i].values[idx[i]]);
    }
    bool ok = true;
    for (const Guard& g : guards_) {
      if (!g.predicate(point)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(std::move(point));
    // Odometer increment.
    std::size_t i = params_.size();
    while (i-- > 0) {
      if (++idx[i] < params_[i].values.size()) break;
      idx[i] = 0;
      if (i == 0) return out;
    }
  }
}

bool ConfigSpace::valid(const ConfigPoint& point) const {
  for (const ParamDomain& p : params_) {
    auto v = point.try_get(p.name);
    if (!v) return false;
    if (std::find(p.values.begin(), p.values.end(), *v) == p.values.end()) {
      return false;
    }
  }
  for (const Guard& g : guards_) {
    if (!g.predicate(point)) return false;
  }
  return true;
}

}  // namespace avf::tunable
