#include "tunable/config.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::tunable {

int ConfigPoint::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::out_of_range(util::format("no control parameter: {}", name));
  }
  return it->second;
}

std::optional<int> ConfigPoint::try_get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

ConfigPoint ConfigPoint::with(const std::string& name, int value) const {
  ConfigPoint copy = *this;
  copy.set(name, value);
  return copy;
}

std::string ConfigPoint::key() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!out.empty()) out += ',';
    out += util::format("{}={}", name, value);
  }
  return out;
}

ConfigPoint ConfigPoint::parse(const std::string& key) {
  ConfigPoint point;
  if (key.empty()) return point;
  std::size_t pos = 0;
  std::size_t item_index = 0;
  for (;;) {
    std::size_t comma = key.find(',', pos);
    bool last = comma == std::string::npos;
    if (last) comma = key.size();
    std::string_view item(key.data() + pos, comma - pos);
    if (item.empty()) {
      throw std::invalid_argument(util::format(
          last ? "config key \"{}\": trailing separator after item {}"
               : "config key \"{}\": empty item at position {}",
          key, item_index));
    }
    std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument(util::format(
          "config key \"{}\": item \"{}\" has no '='", key,
          std::string(item)));
    }
    if (eq == 0) {
      throw std::invalid_argument(util::format(
          "config key \"{}\": item \"{}\" has an empty parameter name", key,
          std::string(item)));
    }
    std::string name(item.substr(0, eq));
    std::string_view digits = item.substr(eq + 1);
    int value = 0;
    auto [end, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec == std::errc::result_out_of_range) {
      throw std::invalid_argument(util::format(
          "config key \"{}\": value \"{}\" for parameter {} is out of range",
          key, std::string(digits), name));
    }
    if (ec != std::errc() || end == digits.data()) {
      throw std::invalid_argument(util::format(
          "config key \"{}\": value \"{}\" for parameter {} is not an integer",
          key, std::string(digits), name));
    }
    if (end != digits.data() + digits.size()) {
      throw std::invalid_argument(util::format(
          "config key \"{}\": trailing characters after value in \"{}\"", key,
          std::string(item)));
    }
    if (point.try_get(name)) {
      throw std::invalid_argument(util::format(
          "config key \"{}\": duplicate parameter {}", key, name));
    }
    point.set(name, value);
    ++item_index;
    if (last) break;
    pos = comma + 1;
  }
  return point;
}

void ConfigSpace::add_parameter(const std::string& name,
                                std::vector<int> values,
                                std::source_location where) {
  if (values.empty()) {
    throw std::invalid_argument(
        util::format("parameter {} has empty domain", name));
  }
  if (has_parameter(name)) {
    throw std::invalid_argument(util::format("duplicate parameter: {}", name));
  }
  params_.push_back(ParamDomain{name, std::move(values), where});
}

void ConfigSpace::add_guard(std::string description,
                            std::function<bool(const ConfigPoint&)> predicate,
                            std::source_location where) {
  guards_.push_back(Guard{std::move(description), std::move(predicate), where});
}

bool ConfigSpace::has_parameter(const std::string& name) const {
  return std::any_of(params_.begin(), params_.end(),
                     [&](const ParamDomain& p) { return p.name == name; });
}

const ParamDomain& ConfigSpace::parameter(const std::string& name) const {
  for (const ParamDomain& p : params_) {
    if (p.name == name) return p;
  }
  throw std::out_of_range(util::format("no such parameter: {}", name));
}

std::vector<ConfigPoint> ConfigSpace::enumerate() const {
  std::vector<ConfigPoint> out;
  if (params_.empty()) return out;
  std::vector<std::size_t> idx(params_.size(), 0);
  for (;;) {
    ConfigPoint point;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      point.set(params_[i].name, params_[i].values[idx[i]]);
    }
    bool ok = true;
    for (const Guard& g : guards_) {
      if (!g.predicate(point)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(std::move(point));
    // Odometer increment.
    std::size_t i = params_.size();
    while (i-- > 0) {
      if (++idx[i] < params_[i].values.size()) break;
      idx[i] = 0;
      if (i == 0) return out;
    }
  }
}

bool ConfigSpace::valid(const ConfigPoint& point) const {
  for (const ParamDomain& p : params_) {
    auto v = point.try_get(p.name);
    if (!v) return false;
    if (std::find(p.values.begin(), p.values.end(), *v) == p.values.end()) {
      return false;
    }
  }
  for (const Guard& g : guards_) {
    if (!g.predicate(point)) return false;
  }
  return true;
}

std::size_t ConfigSpace::raw_size() const {
  if (params_.empty()) return 0;
  std::size_t total = 1;
  for (const ParamDomain& p : params_) {
    std::size_t n = p.values.size();
    if (total > std::numeric_limits<std::size_t>::max() / n) {
      return std::numeric_limits<std::size_t>::max();  // saturate
    }
    total *= n;
  }
  return total;
}

bool ConfigSpace::feasible() const {
  if (params_.empty()) return false;
  std::vector<std::size_t> idx(params_.size(), 0);
  for (;;) {
    ConfigPoint point;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      point.set(params_[i].name, params_[i].values[idx[i]]);
    }
    bool ok = true;
    for (const Guard& g : guards_) {
      if (!g.predicate(point)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
    std::size_t i = params_.size();
    while (i-- > 0) {
      if (++idx[i] < params_[i].values.size()) break;
      idx[i] = 0;
      if (i == 0) return false;
    }
  }
}

}  // namespace avf::tunable
