// The passive form of a tunable application (paper §3): configuration
// space, QoS metric schema, resource axes, task modules, and transitions —
// everything the preprocessor would generate from the source annotations in
// Figure 2, expressed as a registration DSL:
//
//   AppSpec spec("active-viz");
//   spec.space().add_parameter("dR", {80, 160, 320});
//   spec.metrics().add("transmit_time", Direction::kLowerBetter);
//   spec.add_resource_axis("cpu_share");
//   spec.add_task({.name = "module1", .params = {"l", "dR", "c"}, ...});
//   spec.add_transition({.name = "notify-server", ...});
//
// Every registration captures its std::source_location, so diagnostics from
// the spec linter (src/lint) point back at the declaration site.
#pragma once

#include <functional>
#include <source_location>
#include <string>
#include <vector>

#include "tunable/config.hpp"
#include "tunable/qos.hpp"

namespace avf::lint {
class Report;
struct Options;
}  // namespace avf::lint

namespace avf::tunable {

/// One tunable task module (the `task` construct): metadata describing
/// which parameters steer it, which environment resources it consumes, and
/// which metrics it produces.  Used for documentation, database templates,
/// and monitoring customization ("behavior of the monitoring agent is
/// customized to the currently active configuration", §6.1).
struct TaskSpec {
  std::string name;
  std::vector<std::string> params;     // control parameters it reads
  std::vector<std::string> resources;  // e.g. "client.CPU", "client.network"
  std::vector<std::string> metrics;    // QoS metrics it updates
  /// Guard: whether this task participates under `config` (empty = always).
  std::function<bool(const ConfigPoint&)> guard;
  /// Declaration site, captured automatically at aggregate initialization.
  std::source_location where = std::source_location::current();
};

/// One reconfiguration action (the `transition` construct): runs when the
/// steering agent installs a new configuration at a task boundary.
struct TransitionSpec {
  std::string name;
  /// Guard on (from, to); a false return vetoes this transition (the
  /// steering agent then reports failure back to the scheduler).
  std::function<bool(const ConfigPoint& from, const ConfigPoint& to)> guard;
  /// Handler performing application-specific actions (e.g. notifying the
  /// server of a new compression type).
  std::function<void(const ConfigPoint& from, const ConfigPoint& to)> handler;
  /// Declaration site, captured automatically at aggregate initialization.
  std::source_location where = std::source_location::current();
};

class AppSpec {
 public:
  explicit AppSpec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ConfigSpace& space() { return space_; }
  const ConfigSpace& space() const { return space_; }

  MetricSchema& metrics() { return metrics_; }
  const MetricSchema& metrics() const { return metrics_; }

  /// Declare a resource dimension the application's behavior depends on
  /// (the axes of the performance database), e.g. "cpu_share", "net_bps".
  void add_resource_axis(
      const std::string& axis,
      std::source_location where = std::source_location::current());
  const std::vector<std::string>& resource_axes() const { return axes_; }
  const std::vector<std::source_location>& resource_axis_sites() const {
    return axis_sites_;
  }

  void add_task(TaskSpec task) { tasks_.push_back(std::move(task)); }
  const std::vector<TaskSpec>& tasks() const { return tasks_; }

  void add_transition(TransitionSpec transition) {
    transitions_.push_back(std::move(transition));
  }
  const std::vector<TransitionSpec>& transitions() const {
    return transitions_;
  }

  /// Tasks active under `config` (guard-filtered).
  std::vector<const TaskSpec*> active_tasks(const ConfigPoint& config) const;

  /// Static analysis of this specification: reference integrity, guard
  /// feasibility, transition connectivity, metric consistency.  Defined in
  /// the avf_lint library (src/lint/lint.cpp); callers must link it.
  lint::Report validate() const;
  lint::Report validate(const lint::Options& options) const;

 private:
  std::string name_;
  ConfigSpace space_;
  MetricSchema metrics_;
  std::vector<std::string> axes_;
  std::vector<std::source_location> axis_sites_;
  std::vector<TaskSpec> tasks_;
  std::vector<TransitionSpec> transitions_;
};

}  // namespace avf::tunable
