// Pass-through "codec": no compression, near-zero CPU cost.  Serves as the
// `c = none` setting of the compression control parameter and as the
// baseline in codec benchmarks.
#pragma once

#include "codec/codec.hpp"

namespace avf::codec {

class NullCodec final : public Codec {
 public:
  std::string_view name() const override { return "none"; }
  Bytes compress(BytesView input) const override {
    return Bytes(input.begin(), input.end());
  }
  Bytes decompress(BytesView input) const override {
    return Bytes(input.begin(), input.end());
  }
  CostModel cost() const override { return {2.0, 2.0}; }  // memcpy-ish
};

}  // namespace avf::codec
