// LZW — the paper's "compression A".
//
// Classic variable-width LZW: codes start at 9 bits and grow to 16; when the
// dictionary fills, a CLEAR code resets it.  Format: 4-byte little-endian
// original length, then the LSB-first packed code stream.
#pragma once

#include "codec/codec.hpp"

namespace avf::codec {

class LzwCodec final : public Codec {
 public:
  std::string_view name() const override { return "lzw"; }
  Bytes compress(BytesView input) const override;
  Bytes decompress(BytesView input) const override;
  // ~10 MB/s compress, ~18 MB/s decompress on a 450 Mops host, matching
  // Unix compress(1)-class throughput on late-90s hardware.
  CostModel cost() const override { return {45.0, 25.0}; }
};

}  // namespace avf::codec
