// Compression codec interface.
//
// The active visualization application optionally compresses wavelet data
// before transmission (paper §2.1).  The two methods the paper evaluates are
// "compression A" (LZW — cheap, moderate ratio) and "compression B" (Bzip2 —
// expensive, better ratio); both are reimplemented from scratch here so the
// transmitted byte counts in every experiment are *real* compression output,
// not synthetic estimates.
//
// Because codecs run inside the simulator, each codec also carries a CPU
// cost model (simulated ops charged per input byte); the constants are the
// calibration table in DESIGN.md §5.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace avf::codec {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Simulated CPU cost per *input* byte of the respective operation.
struct CostModel {
  double compress_ops_per_byte;
  double decompress_ops_per_byte;
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string_view name() const = 0;
  virtual Bytes compress(BytesView input) const = 0;

  /// Inverts compress(); throws std::runtime_error on corrupt input.
  virtual Bytes decompress(BytesView input) const = 0;

  virtual CostModel cost() const = 0;

  /// Simulated ops to compress `input_bytes` of data.
  double compress_ops(std::size_t input_bytes) const {
    return cost().compress_ops_per_byte * static_cast<double>(input_bytes);
  }
  /// Simulated ops to decompress data that expands to `output_bytes`.
  double decompress_ops(std::size_t output_bytes) const {
    return cost().decompress_ops_per_byte * static_cast<double>(output_bytes);
  }
};

/// Codec identifiers — the domain of the `c` control parameter.
enum class CodecId : int {
  kNone = 0,  // raw pass-through
  kLzw = 1,   // "compression A" in the paper
  kBwt = 2,   // "compression B" (Bzip2-style) in the paper
};

/// Singleton codec instances (stateless, thread-compatible).
const Codec& codec_for(CodecId id);
const Codec& codec_by_name(std::string_view name);
std::string_view codec_name(CodecId id);
std::vector<CodecId> all_codec_ids();

}  // namespace avf::codec
