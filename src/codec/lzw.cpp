#include "codec/lzw.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "codec/bitstream.hpp"

namespace avf::codec {

namespace {

constexpr std::uint32_t kClearCode = 256;
constexpr std::uint32_t kFirstCode = 257;
constexpr int kMinBits = 9;
constexpr int kMaxBits = 12;
constexpr std::uint32_t kMaxCode = (1u << kMaxBits) - 1;

/// Dictionary key: (prefix code, next byte) packed into one 32-bit word.
std::uint32_t pack(std::uint32_t prefix, std::uint8_t byte) {
  return (prefix << 8) | byte;
}

/// Open-addressed (key -> code) table for the encoder dictionary.  The
/// dictionary holds at most kMaxCode - kFirstCode + 1 = 3839 entries
/// between clears, so 2^14 slots keeps the load factor under 1/4 and
/// probe chains near one.  `generation` stamps make clear() O(1) — stale
/// slots from earlier dictionary epochs simply read as empty.  Compared to
/// std::unordered_map this removes the per-node allocation and pointer
/// chase on the byte-granular hot loop; the codes produced are identical.
class FlatDict {
 public:
  FlatDict() : keys_(kSlots, 0), codes_(kSlots, 0), stamps_(kSlots, 0) {}

  void clear() { ++generation_; }

  /// Returns the code for `key`, or kNotFound.  Remembers the probe slot
  /// so a miss can be followed by an O(1) insert of the same key.
  std::uint32_t find(std::uint32_t key) {
    std::size_t slot = hash(key);
    while (stamps_[slot] == generation_) {
      if (keys_[slot] == key) return codes_[slot];
      slot = (slot + 1) & (kSlots - 1);
    }
    last_miss_ = slot;
    return kNotFound;
  }

  /// Insert at the slot located by the immediately preceding find() miss.
  void insert_at_miss(std::uint32_t key, std::uint32_t code) {
    keys_[last_miss_] = key;
    codes_[last_miss_] = code;
    stamps_[last_miss_] = generation_;
  }

  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  static constexpr std::size_t kSlots = 1u << 14;

  static std::size_t hash(std::uint32_t key) {
    return (key * 2654435761u) >> (32 - 14);
  }

  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> codes_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t generation_ = 1;
  std::size_t last_miss_ = 0;
};

void append_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t read_u32(BytesView in, std::size_t at) {
  if (at + 4 > in.size()) throw std::runtime_error("lzw: truncated header");
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

}  // namespace

Bytes LzwCodec::compress(BytesView input) const {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(input.size()));
  if (input.empty()) return out;

  BitWriter bits;
  FlatDict dict;
  std::uint32_t next_code = kFirstCode;
  int width = kMinBits;

  std::uint32_t prefix = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) {
    std::uint8_t c = input[i];
    std::uint32_t found = dict.find(pack(prefix, c));
    if (found != FlatDict::kNotFound) {
      prefix = found;
      continue;
    }
    bits.write(prefix, width);
    if (next_code <= kMaxCode) {
      dict.insert_at_miss(pack(prefix, c), next_code);
      // Widen when the *next* code to be emitted would not fit.
      if (next_code == (1u << width) && width < kMaxBits) ++width;
      ++next_code;
    } else {
      bits.write(kClearCode, width);
      dict.clear();
      next_code = kFirstCode;
      width = kMinBits;
    }
    prefix = c;
  }
  bits.write(prefix, width);

  Bytes packed = bits.take();
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

Bytes LzwCodec::decompress(BytesView input) const {
  std::uint32_t original_size = read_u32(input, 0);
  Bytes out;
  // A corrupted header must not trigger a huge up-front allocation; the
  // vector grows on demand if the size is genuine.
  out.reserve(std::min<std::size_t>(original_size, 1u << 22));
  if (original_size == 0) return out;

  BitReader bits(input.subspan(4));
  // Dictionary entry: (prefix code, appended byte); entries < 256 are roots.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> dict;
  auto reset_dict = [&] {
    dict.clear();
    dict.reserve(kMaxCode + 1);
    for (std::uint32_t i = 0; i < kFirstCode; ++i) {
      dict.emplace_back(0xFFFFFFFFu, static_cast<std::uint8_t>(i));
    }
  };
  reset_dict();
  int width = kMinBits;

  auto expand = [&](std::uint32_t code, Bytes& buf) {
    std::size_t start = buf.size();
    while (code >= kFirstCode) {
      if (code >= dict.size()) throw std::runtime_error("lzw: bad code");
      buf.push_back(dict[code].second);
      code = dict[code].first;
    }
    buf.push_back(static_cast<std::uint8_t>(code));
    // The chain unwinds last-byte-first; reverse the appended segment.
    std::reverse(buf.begin() + static_cast<std::ptrdiff_t>(start), buf.end());
  };

  std::uint32_t prev = bits.read(width);
  if (prev >= 256) throw std::runtime_error("lzw: bad first code");
  expand(prev, out);

  while (out.size() < original_size) {
    // Mirror the encoder's width schedule: the encoder widens after
    // emitting the code that makes next_code == 1 << width.
    if (dict.size() == (1u << width) && width < kMaxBits) ++width;
    std::uint32_t code = bits.read(width);
    if (code == kClearCode) {
      reset_dict();
      width = kMinBits;
      prev = bits.read(width);
      if (prev >= 256) throw std::runtime_error("lzw: bad code after clear");
      expand(prev, out);
      continue;
    }
    std::size_t seg_start = out.size();
    if (code < dict.size()) {
      expand(code, out);
      if (dict.size() <= kMaxCode) {
        dict.emplace_back(prev, out[seg_start]);
      }
    } else if (code == dict.size() && dict.size() <= kMaxCode) {
      // The cScSc special case: entry being defined right now.
      std::size_t prev_start = out.size();
      expand(prev, out);
      std::uint8_t first = out[prev_start];
      out.push_back(first);
      dict.emplace_back(prev, first);
    } else {
      throw std::runtime_error("lzw: code out of range");
    }
    prev = code;
  }
  if (out.size() != original_size) {
    throw std::runtime_error("lzw: size mismatch");
  }
  return out;
}

}  // namespace avf::codec
