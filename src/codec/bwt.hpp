// Bzip2-style block compressor — the paper's "compression B".
//
// Pipeline per block (default 64 KiB): Burrows-Wheeler transform (suffix
// array by prefix doubling), move-to-front, packbits-style run-length
// coding, canonical Huffman.  Substantially better ratio than LZW on the
// wavelet-coefficient data the visualization application ships, at a much
// higher CPU cost — exactly the trade-off that produces the Figure 6(a)
// crossover.
//
// Format: per block { u32 original_len | u32 primary_index | u32
// compressed_len | huffman table (256 x 1-byte code lengths) | bitstream }.
#pragma once

#include "codec/codec.hpp"

namespace avf::codec {

class BwtCodec final : public Codec {
 public:
  explicit BwtCodec(std::size_t block_size = 64 * 1024)
      : block_size_(block_size) {}

  std::string_view name() const override { return "bwt"; }
  Bytes compress(BytesView input) const override;
  Bytes decompress(BytesView input) const override;
  // ~1 MB/s compress, ~4.7 MB/s decompress on a 450 Mops host — bzip2-class
  // throughput on late-90s hardware (and roughly 10x LZW, which is what
  // creates the Figure 6(a) crossover inside the 50-500 KBps window).
  CostModel cost() const override { return {450.0, 95.0}; }

  std::size_t block_size() const { return block_size_; }

 private:
  std::size_t block_size_;
};

namespace bwtdetail {

/// Burrows-Wheeler transform of `block`; returns the transformed bytes and
/// sets `primary_index` to the row of the original string.
Bytes bwt_forward(BytesView block, std::uint32_t& primary_index);

/// Inverse BWT.
Bytes bwt_inverse(BytesView last_column, std::uint32_t primary_index);

/// Move-to-front encode/decode (alphabet of 256 byte values).
Bytes mtf_encode(BytesView input);
Bytes mtf_decode(BytesView input);

/// Packbits-style RLE: control byte n in [0,127] = n+1 literals follow;
/// n in [129,255] = repeat next byte 257-n times; 128 unused.
Bytes rle_encode(BytesView input);
Bytes rle_decode(BytesView input);

/// Canonical Huffman over bytes.  `lengths_out` receives 256 code lengths
/// (0 = symbol absent).  Decode needs the same table.
Bytes huffman_encode(BytesView input, std::uint8_t (&lengths_out)[256]);
Bytes huffman_decode(BytesView bits, const std::uint8_t (&lengths)[256],
                     std::size_t output_size);

/// bzip2-style zero-run coding of the MTF stream: symbols 0/1 are RUNA/RUNB
/// digits of a bijective base-2 run length; MTF value v >= 1 maps to symbol
/// v + 1.  Alphabet size = 257.
constexpr int kRle0Alphabet = 257;
std::vector<std::uint16_t> rle0_encode(BytesView mtf);
/// `max_output` bounds the decoded size (a corrupted run-length symbol
/// sequence could otherwise claim astronomically long zero runs).
Bytes rle0_decode(std::span<const std::uint16_t> symbols,
                  std::size_t max_output = SIZE_MAX);

/// Canonical Huffman over an arbitrary small symbol alphabet (used with the
/// RLE0 stream).  `lengths_out` must have `alphabet` entries.
Bytes huffman_encode_sym(std::span<const std::uint16_t> symbols, int alphabet,
                         std::vector<std::uint8_t>& lengths_out);
std::vector<std::uint16_t> huffman_decode_sym(
    BytesView bits, std::span<const std::uint8_t> lengths,
    std::size_t symbol_count);

/// Suffix array of `data` (treating it as ending with a unique smallest
/// sentinel) by prefix doubling; O(n log^2 n).
std::vector<std::uint32_t> suffix_array(BytesView data);

}  // namespace bwtdetail

}  // namespace avf::codec
