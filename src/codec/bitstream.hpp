// Bit-granular I/O over byte buffers, shared by the LZW and Huffman coders.
// Bits are packed LSB-first within each byte.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace avf::codec {

class BitWriter {
 public:
  /// Append the low `nbits` bits of `value` (nbits in [1, 32]).
  void write(std::uint32_t value, int nbits) {
    for (int i = 0; i < nbits; ++i) {
      if (bit_ == 0) bytes_.push_back(0);
      if ((value >> i) & 1u) {
        bytes_.back() |= static_cast<std::uint8_t>(1u << bit_);
      }
      bit_ = (bit_ + 1) & 7;
    }
  }

  std::vector<std::uint8_t> take() {
    bit_ = 0;
    return std::move(bytes_);
  }

  std::size_t bit_count() const {
    return bytes_.empty() ? 0 : (bytes_.size() - 1) * 8 + (bit_ == 0 ? 8 : bit_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `nbits` bits (LSB-first); throws std::runtime_error past the end.
  std::uint32_t read(int nbits) {
    std::uint32_t value = 0;
    for (int i = 0; i < nbits; ++i) {
      if (pos_ >= data_.size()) {
        throw std::runtime_error("bitstream: read past end");
      }
      if ((data_[pos_] >> bit_) & 1u) value |= (1u << i);
      if (++bit_ == 8) {
        bit_ = 0;
        ++pos_;
      }
    }
    return value;
  }

  bool exhausted() const { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  int bit_ = 0;
};

}  // namespace avf::codec
