#include "codec/bwt.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "codec/bitstream.hpp"

namespace avf::codec {

namespace bwtdetail {

std::vector<std::uint32_t> suffix_array(BytesView data) {
  // Suffixes of data + implicit sentinel (smaller than every byte).
  // Prefix doubling with rank pairs; ranks use -1 for "past the end".
  std::size_t n = data.size() + 1;
  std::vector<std::uint32_t> sa(n);
  std::vector<std::int32_t> rank(n), tmp(n);
  std::iota(sa.begin(), sa.end(), 0u);
  for (std::size_t i = 0; i + 1 < n; ++i) rank[i] = data[i];
  rank[n - 1] = -1;  // sentinel suffix

  for (std::size_t k = 1;; k *= 2) {
    auto key = [&](std::uint32_t i) {
      std::int32_t second = (i + k < n) ? rank[i + k] : -2;
      return std::pair<std::int32_t, std::int32_t>(rank[i], second);
    };
    std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
      return key(a) < key(b);
    });
    tmp[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      tmp[sa[i]] = tmp[sa[i - 1]] + (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
    }
    rank = tmp;
    if (rank[sa[n - 1]] == static_cast<std::int32_t>(n) - 1) break;
  }
  return sa;
}

Bytes bwt_forward(BytesView block, std::uint32_t& primary_index) {
  std::vector<std::uint32_t> sa = suffix_array(block);
  Bytes out;
  out.reserve(block.size());
  primary_index = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    std::uint32_t p = sa[i];
    if (p == 0) {
      primary_index = static_cast<std::uint32_t>(i);
    } else {
      out.push_back(block[p - 1]);
    }
  }
  return out;
}

Bytes bwt_inverse(BytesView last_column, std::uint32_t primary_index) {
  std::size_t n = last_column.size();
  if (primary_index > n) throw std::runtime_error("bwt: bad primary index");
  // L' = last_column with the sentinel (value -1) inserted at primary_index.
  std::size_t n1 = n + 1;
  auto value_at = [&](std::size_t i) -> int {
    if (i == primary_index) return -1;
    return last_column[i < primary_index ? i : i - 1];
  };
  // C[c] = number of symbols strictly smaller than c; occ via single pass.
  std::array<std::uint32_t, 257> count{};  // index 0 = sentinel, 1+b = byte b
  for (std::size_t i = 0; i < n1; ++i) ++count[value_at(i) + 1];
  std::array<std::uint32_t, 257> before{};
  std::uint32_t sum = 0;
  for (int c = 0; c < 257; ++c) {
    before[c] = sum;
    sum += count[c];
  }
  std::vector<std::uint32_t> lf(n1);
  std::array<std::uint32_t, 257> seen{};
  for (std::size_t i = 0; i < n1; ++i) {
    int c = value_at(i) + 1;
    lf[i] = before[c] + seen[c]++;
  }
  Bytes out(n);
  std::uint32_t row = 0;  // row 0 starts with the sentinel, ends with s[n-1]
  for (std::size_t k = n; k-- > 0;) {
    int v = value_at(row);
    if (v < 0) throw std::runtime_error("bwt: corrupt stream");
    out[k] = static_cast<std::uint8_t>(v);
    row = lf[row];
  }
  return out;
}

Bytes mtf_encode(BytesView input) {
  std::array<std::uint8_t, 256> order;
  for (int i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  Bytes out;
  out.reserve(input.size());
  for (std::uint8_t b : input) {
    int pos = 0;
    while (order[pos] != b) ++pos;
    out.push_back(static_cast<std::uint8_t>(pos));
    std::memmove(&order[1], &order[0], static_cast<std::size_t>(pos));
    order[0] = b;
  }
  return out;
}

Bytes mtf_decode(BytesView input) {
  std::array<std::uint8_t, 256> order;
  for (int i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  Bytes out;
  out.reserve(input.size());
  for (std::uint8_t pos : input) {
    std::uint8_t b = order[pos];
    out.push_back(b);
    std::memmove(&order[1], &order[0], static_cast<std::size_t>(pos));
    order[0] = b;
  }
  return out;
}

Bytes rle_encode(BytesView input) {
  Bytes out;
  std::size_t i = 0;
  while (i < input.size()) {
    // Measure the run starting at i.
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] &&
           run < 128) {
      ++run;
    }
    if (run >= 3) {
      out.push_back(static_cast<std::uint8_t>(257 - run));
      out.push_back(input[i]);
      i += run;
      continue;
    }
    // Collect literals until the next run of >= 3 (or 128 literals).
    std::size_t start = i;
    std::size_t lits = 0;
    while (i < input.size() && lits < 128) {
      std::size_t r = 1;
      while (i + r < input.size() && input[i + r] == input[i] && r < 3) ++r;
      if (r >= 3) break;
      i += r;
      lits += r;
    }
    if (lits > 128) {  // r==2 step may overshoot by one
      --lits;
      --i;
    }
    out.push_back(static_cast<std::uint8_t>(lits - 1));
    out.insert(out.end(), input.begin() + start, input.begin() + start + lits);
  }
  return out;
}

Bytes rle_decode(BytesView input) {
  Bytes out;
  std::size_t i = 0;
  while (i < input.size()) {
    std::uint8_t ctl = input[i++];
    if (ctl <= 127) {
      std::size_t lits = ctl + 1u;
      if (i + lits > input.size()) throw std::runtime_error("rle: truncated");
      out.insert(out.end(), input.begin() + i, input.begin() + i + lits);
      i += lits;
    } else if (ctl >= 129) {
      if (i >= input.size()) throw std::runtime_error("rle: truncated run");
      std::size_t run = 257u - ctl;
      out.insert(out.end(), run, input[i++]);
    } else {
      throw std::runtime_error("rle: invalid control byte 128");
    }
  }
  return out;
}

namespace {

/// Compute Huffman code lengths over an `alphabet`-sized histogram.
void huffman_lengths(std::span<const std::uint64_t> freq,
                     std::span<std::uint8_t> lengths) {
  int alphabet = static_cast<int>(freq.size());
  struct Node {
    std::uint64_t weight;
    int index;  // < alphabet: leaf symbol; >= alphabet: internal node id
  };
  auto cmp = [](const Node& a, const Node& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.index > b.index;  // deterministic tie-break
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  std::vector<std::pair<int, int>> children;  // internal node -> (left, right)
  for (int s = 0; s < alphabet; ++s) {
    if (freq[s] > 0) heap.push({freq[s], s});
  }
  std::fill(lengths.begin(), lengths.end(), 0);
  if (heap.empty()) return;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(heap.top().index)] = 1;
    return;
  }
  int next_internal = alphabet;
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    children.emplace_back(a.index, b.index);
    heap.push({a.weight + b.weight, next_internal++});
  }
  // Depth-first depth assignment from the root (last internal node).
  std::vector<std::pair<int, int>> stack{{heap.top().index, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    if (idx < alphabet) {
      lengths[static_cast<std::size_t>(idx)] =
          static_cast<std::uint8_t>(depth);
    } else {
      auto [l, r] = children[static_cast<std::size_t>(idx - alphabet)];
      stack.push_back({l, depth + 1});
      stack.push_back({r, depth + 1});
    }
  }
}

/// Canonical code assignment: symbols sorted by (length, value).
void canonical_codes(std::span<const std::uint8_t> lengths,
                     std::span<std::uint32_t> codes) {
  int alphabet = static_cast<int>(lengths.size());
  std::vector<int> symbols;
  for (int s = 0; s < alphabet; ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (int s : symbols) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    prev_len = lengths[s];
    ++code;
  }
}

struct CanonicalDecoder {
  static constexpr int kMaxLen = 64;
  std::array<std::uint32_t, kMaxLen + 1> count{}, first_code{}, first_index{};
  std::vector<int> symbols;
  int max_len = 0;

  explicit CanonicalDecoder(std::span<const std::uint8_t> lengths) {
    int alphabet = static_cast<int>(lengths.size());
    for (int s = 0; s < alphabet; ++s) {
      if (lengths[s] > 0) {
        if (lengths[s] > kMaxLen) {
          throw std::runtime_error("huffman: bad table");
        }
        ++count[lengths[s]];
        max_len = std::max<int>(max_len, lengths[s]);
      }
    }
    std::uint32_t code = 0, index = 0;
    for (int len = 1; len <= max_len; ++len) {
      code <<= 1;
      first_code[len] = code;
      first_index[len] = index;
      code += count[len];
      index += count[len];
    }
    for (int len = 1; len <= max_len; ++len) {
      for (int s = 0; s < alphabet; ++s) {
        if (lengths[s] == len) symbols.push_back(s);
      }
    }
  }

  int decode_one(BitReader& bits) const {
    std::uint32_t v = 0;
    for (int len = 1; len <= max_len; ++len) {
      v = (v << 1) | bits.read(1);
      std::uint32_t offset = v - first_code[len];
      if (v >= first_code[len] && offset < count[len]) {
        return symbols[first_index[len] + offset];
      }
    }
    throw std::runtime_error("huffman: bad code");
  }
};

}  // namespace

Bytes huffman_encode(BytesView input, std::uint8_t (&lengths_out)[256]) {
  std::array<std::uint64_t, 256> freq{};
  for (std::uint8_t b : input) ++freq[b];
  huffman_lengths(freq, lengths_out);
  std::uint32_t codes[256] = {};
  canonical_codes(lengths_out, codes);
  BitWriter bits;
  for (std::uint8_t b : input) {
    // Emit MSB-first so canonical decode can walk bit by bit.
    for (int i = lengths_out[b] - 1; i >= 0; --i) {
      bits.write((codes[b] >> i) & 1u, 1);
    }
  }
  return bits.take();
}

Bytes huffman_decode(BytesView data, const std::uint8_t (&lengths)[256],
                     std::size_t output_size) {
  CanonicalDecoder decoder{std::span<const std::uint8_t>(lengths)};
  BitReader bits(data);
  Bytes out;
  out.reserve(std::min<std::size_t>(output_size, 1u << 22));
  while (out.size() < output_size) {
    out.push_back(static_cast<std::uint8_t>(decoder.decode_one(bits)));
  }
  return out;
}

std::vector<std::uint16_t> rle0_encode(BytesView mtf) {
  std::vector<std::uint16_t> out;
  out.reserve(mtf.size() / 2 + 16);
  std::size_t i = 0;
  auto emit_run = [&](std::size_t r) {
    // Bijective base-2 digits, least significant first: RUNA=0 (value 1),
    // RUNB=1 (value 2).
    while (r > 0) {
      if (r & 1) {
        out.push_back(0);
        r = (r - 1) / 2;
      } else {
        out.push_back(1);
        r = (r - 2) / 2;
      }
    }
  };
  while (i < mtf.size()) {
    if (mtf[i] == 0) {
      std::size_t run = 0;
      while (i < mtf.size() && mtf[i] == 0) {
        ++run;
        ++i;
      }
      emit_run(run);
    } else {
      out.push_back(static_cast<std::uint16_t>(mtf[i] + 1));
      ++i;
    }
  }
  return out;
}

Bytes rle0_decode(std::span<const std::uint16_t> symbols,
                  std::size_t max_output) {
  Bytes out;
  std::size_t i = 0;
  while (i < symbols.size()) {
    if (symbols[i] <= 1) {
      std::size_t run = 0, place = 1;
      while (i < symbols.size() && symbols[i] <= 1) {
        if (place > (std::size_t{1} << 48)) {
          throw std::runtime_error("rle0: run length overflow");
        }
        run += (symbols[i] == 0 ? 1u : 2u) * place;
        place *= 2;
        ++i;
      }
      if (out.size() + run > max_output) {
        throw std::runtime_error("rle0: output exceeds declared size");
      }
      out.insert(out.end(), run, 0);
    } else {
      if (symbols[i] >= kRle0Alphabet) {
        throw std::runtime_error("rle0: symbol out of range");
      }
      if (out.size() + 1 > max_output) {
        throw std::runtime_error("rle0: output exceeds declared size");
      }
      out.push_back(static_cast<std::uint8_t>(symbols[i] - 1));
      ++i;
    }
  }
  return out;
}

Bytes huffman_encode_sym(std::span<const std::uint16_t> symbols, int alphabet,
                         std::vector<std::uint8_t>& lengths_out) {
  std::vector<std::uint64_t> freq(static_cast<std::size_t>(alphabet), 0);
  for (std::uint16_t s : symbols) {
    if (s >= alphabet) throw std::invalid_argument("symbol out of alphabet");
    ++freq[s];
  }
  lengths_out.assign(static_cast<std::size_t>(alphabet), 0);
  huffman_lengths(freq, lengths_out);
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(alphabet), 0);
  canonical_codes(lengths_out, codes);
  BitWriter bits;
  for (std::uint16_t s : symbols) {
    for (int i = lengths_out[s] - 1; i >= 0; --i) {
      bits.write((codes[s] >> i) & 1u, 1);
    }
  }
  return bits.take();
}

std::vector<std::uint16_t> huffman_decode_sym(
    BytesView data, std::span<const std::uint8_t> lengths,
    std::size_t symbol_count) {
  CanonicalDecoder decoder{lengths};
  BitReader bits(data);
  std::vector<std::uint16_t> out;
  out.reserve(std::min<std::size_t>(symbol_count, 1u << 22));
  while (out.size() < symbol_count) {
    out.push_back(static_cast<std::uint16_t>(decoder.decode_one(bits)));
  }
  return out;
}

}  // namespace bwtdetail

namespace {

void append_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t read_u32(BytesView in, std::size_t& at) {
  if (at + 4 > in.size()) throw std::runtime_error("bwt: truncated header");
  std::uint32_t v = static_cast<std::uint32_t>(in[at]) |
                    (static_cast<std::uint32_t>(in[at + 1]) << 8) |
                    (static_cast<std::uint32_t>(in[at + 2]) << 16) |
                    (static_cast<std::uint32_t>(in[at + 3]) << 24);
  at += 4;
  return v;
}

}  // namespace

Bytes BwtCodec::compress(BytesView input) const {
  using namespace bwtdetail;
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(input.size()));
  std::size_t offset = 0;
  while (offset < input.size()) {
    std::size_t len = std::min(block_size_, input.size() - offset);
    BytesView block = input.subspan(offset, len);
    offset += len;

    std::uint32_t primary = 0;
    Bytes transformed = bwt_forward(block, primary);
    Bytes mtf = mtf_encode(transformed);
    std::vector<std::uint16_t> symbols = rle0_encode(mtf);
    std::vector<std::uint8_t> lengths;
    Bytes packed = huffman_encode_sym(symbols, kRle0Alphabet, lengths);

    append_u32(out, static_cast<std::uint32_t>(len));
    append_u32(out, primary);
    append_u32(out, static_cast<std::uint32_t>(symbols.size()));
    append_u32(out, static_cast<std::uint32_t>(packed.size()));
    out.insert(out.end(), lengths.begin(), lengths.end());
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return out;
}

Bytes BwtCodec::decompress(BytesView input) const {
  using namespace bwtdetail;
  std::size_t at = 0;
  std::uint32_t total = read_u32(input, at);
  Bytes out;
  out.reserve(std::min<std::size_t>(total, 1u << 22));
  while (out.size() < total) {
    std::uint32_t block_len = read_u32(input, at);
    std::uint32_t primary = read_u32(input, at);
    std::uint32_t sym_count = read_u32(input, at);
    std::uint32_t packed_len = read_u32(input, at);
    if (at + kRle0Alphabet + packed_len > input.size()) {
      throw std::runtime_error("bwt: truncated block");
    }
    std::span<const std::uint8_t> lengths =
        input.subspan(at, kRle0Alphabet);
    at += kRle0Alphabet;
    BytesView packed = input.subspan(at, packed_len);
    at += packed_len;

    std::vector<std::uint16_t> symbols =
        huffman_decode_sym(packed, lengths, sym_count);
    Bytes mtf = rle0_decode(symbols, block_len);
    if (mtf.size() != block_len) throw std::runtime_error("bwt: bad block");
    Bytes transformed = mtf_decode(mtf);
    Bytes block = bwt_inverse(transformed, primary);
    out.insert(out.end(), block.begin(), block.end());
  }
  if (out.size() != total) throw std::runtime_error("bwt: size mismatch");
  return out;
}

}  // namespace avf::codec
