#include "codec/bwt.hpp"
#include "codec/codec.hpp"
#include "codec/lzw.hpp"
#include "codec/null_codec.hpp"
#include "util/fmt.hpp"

#include <stdexcept>

namespace avf::codec {

const Codec& codec_for(CodecId id) {
  static const NullCodec none;
  static const LzwCodec lzw;
  static const BwtCodec bwt;
  switch (id) {
    case CodecId::kNone: return none;
    case CodecId::kLzw: return lzw;
    case CodecId::kBwt: return bwt;
  }
  throw std::invalid_argument(
      util::format("unknown codec id: {}", static_cast<int>(id)));
}

const Codec& codec_by_name(std::string_view name) {
  // One table built on first use; lookups after that are a scan of three
  // pre-resolved entries instead of re-entering codec_for per candidate.
  struct Entry {
    std::string_view name;
    const Codec* codec;
  };
  static const std::vector<Entry> table = [] {
    std::vector<Entry> entries;
    for (CodecId id : all_codec_ids()) {
      const Codec& codec = codec_for(id);
      entries.push_back({codec.name(), &codec});
    }
    return entries;
  }();
  for (const Entry& entry : table) {
    if (entry.name == name) return *entry.codec;
  }
  throw std::invalid_argument(
      util::format("unknown codec name: {}", std::string(name)));
}

std::string_view codec_name(CodecId id) { return codec_for(id).name(); }

std::vector<CodecId> all_codec_ids() {
  return {CodecId::kNone, CodecId::kLzw, CodecId::kBwt};
}

}  // namespace avf::codec
