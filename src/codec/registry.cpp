#include "codec/bwt.hpp"
#include "codec/codec.hpp"
#include "codec/lzw.hpp"
#include "codec/null_codec.hpp"
#include "util/fmt.hpp"

#include <stdexcept>

namespace avf::codec {

const Codec& codec_for(CodecId id) {
  static const NullCodec none;
  static const LzwCodec lzw;
  static const BwtCodec bwt;
  switch (id) {
    case CodecId::kNone: return none;
    case CodecId::kLzw: return lzw;
    case CodecId::kBwt: return bwt;
  }
  throw std::invalid_argument(
      util::format("unknown codec id: {}", static_cast<int>(id)));
}

const Codec& codec_by_name(std::string_view name) {
  for (CodecId id : all_codec_ids()) {
    if (codec_for(id).name() == name) return codec_for(id);
  }
  throw std::invalid_argument(
      util::format("unknown codec name: {}", std::string(name)));
}

std::string_view codec_name(CodecId id) { return codec_for(id).name(); }

std::vector<CodecId> all_codec_ids() {
  return {CodecId::kNone, CodecId::kLzw, CodecId::kBwt};
}

}  // namespace avf::codec
