// Stable rule identifiers for the tunability-spec linter.  The catalog —
// with severities and what each rule means — is documented in DESIGN.md §9;
// tests and tools match on these ids, so treat them as API.
#pragma once

#include <string_view>

namespace avf::lint::rules {

// -- reference integrity (ref.*) ---------------------------------------
inline constexpr std::string_view kUndefinedParam = "ref.undefined-param";
inline constexpr std::string_view kUndefinedMetric = "ref.undefined-metric";
inline constexpr std::string_view kEmptyName = "ref.empty-name";
inline constexpr std::string_view kDuplicateReference =
    "ref.duplicate-reference";
inline constexpr std::string_view kDuplicateTask = "ref.duplicate-task";
inline constexpr std::string_view kDuplicateTransition =
    "ref.duplicate-transition";
inline constexpr std::string_view kUnusedParam = "ref.unused-param";
inline constexpr std::string_view kUnusedMetric = "ref.unused-metric";

// -- parameter domain sanity (param.*) ---------------------------------
inline constexpr std::string_view kDuplicateValue = "param.duplicate-value";

// -- guard feasibility (guard.*) ---------------------------------------
inline constexpr std::string_view kEmptySpace = "guard.empty-space";
inline constexpr std::string_view kInfeasible = "guard.infeasible";
inline constexpr std::string_view kDeadValue = "guard.dead-value";
inline constexpr std::string_view kConstantParam = "guard.constant-parameter";

// -- transition connectivity (transition.*) ----------------------------
inline constexpr std::string_view kAlwaysVeto = "transition.always-veto";
inline constexpr std::string_view kUnreachable = "transition.unreachable";

// -- preference / metric consistency (pref.*) --------------------------
inline constexpr std::string_view kPrefUndefinedMetric =
    "pref.undefined-metric";
inline constexpr std::string_view kPrefNoObjective = "pref.no-objective";
inline constexpr std::string_view kPrefEmptyRange = "pref.empty-range";
inline constexpr std::string_view kPrefVacuousConstraint =
    "pref.vacuous-constraint";
inline constexpr std::string_view kPrefDuplicateConstraint =
    "pref.duplicate-constraint";
inline constexpr std::string_view kPrefObjectiveDirection =
    "pref.objective-direction";
inline constexpr std::string_view kPrefNone = "pref.none";

// -- performance-database coverage (db.*) ------------------------------
inline constexpr std::string_view kDbAxisMismatch = "db.axis-mismatch";
inline constexpr std::string_view kDbMetricMismatch = "db.metric-mismatch";
inline constexpr std::string_view kDbInvalidConfig = "db.invalid-config";
inline constexpr std::string_view kDbUnprofiledConfig = "db.unprofiled-config";
inline constexpr std::string_view kDbPredictedConfig = "db.predicted-config";
inline constexpr std::string_view kDbEmpty = "db.empty";

// -- source determinism / concurrency (src.*, avf_srclint) -------------
inline constexpr std::string_view kSrcUnorderedIter =
    "src.unordered-iteration";
inline constexpr std::string_view kSrcWallClock = "src.wall-clock";
inline constexpr std::string_view kSrcNondetRandom = "src.nondet-random";
inline constexpr std::string_view kSrcRawMutex = "src.raw-mutex";
inline constexpr std::string_view kSrcFloatAccum = "src.float-accum";
inline constexpr std::string_view kSrcUnknownRule = "src.unknown-rule";
inline constexpr std::string_view kSrcBadSuppression =
    "src.bad-suppression";

// -- meta --------------------------------------------------------------
inline constexpr std::string_view kSkipped = "lint.skipped";

}  // namespace avf::lint::rules
