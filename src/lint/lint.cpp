#include "lint/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/fmt.hpp"

namespace avf::lint {

using tunable::AppSpec;
using tunable::ConfigPoint;
using tunable::ConfigSpace;
using tunable::Direction;

namespace {

std::string rid(std::string_view rule) { return std::string(rule); }

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Iterate the *unguarded* cartesian product of the declared domains.
/// `fn` returns false to stop early.  No-op when no parameters exist.
template <typename Fn>
void for_each_raw(const ConfigSpace& space, Fn&& fn) {
  const auto& params = space.parameters();
  if (params.empty()) return;
  std::vector<std::size_t> idx(params.size(), 0);
  ConfigPoint point;
  for (;;) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      point.set(params[i].name, params[i].values[idx[i]]);
    }
    if (!fn(point)) return;
    std::size_t i = params.size();
    while (i-- > 0) {
      if (++idx[i] < params[i].values.size()) break;
      idx[i] = 0;
      if (i == 0) return;
    }
  }
}

/// Check one of a task's name lists against a membership predicate.
template <typename Has>
void check_references(Report& report, const tunable::TaskSpec& task,
                      const std::vector<std::string>& names,
                      std::string_view what, std::string_view missing_rule,
                      Has&& declared) {
  std::set<std::string> seen;
  for (const std::string& name : names) {
    if (name.empty()) {
      report.error(rid(rules::kEmptyName),
                   util::format("task '{}'", task.name),
                   util::format("empty {} reference", what), task.where);
      continue;
    }
    if (!seen.insert(name).second) {
      report.warning(rid(rules::kDuplicateReference),
                     util::format("task '{}'", task.name),
                     util::format("{} '{}' referenced more than once", what,
                                  name),
                     task.where);
      continue;
    }
    if (!missing_rule.empty() && !declared(name)) {
      report.error(rid(missing_rule), util::format("task '{}'", task.name),
                   util::format("references undeclared {} '{}'", what, name),
                   task.where);
    }
  }
}

void lint_references(Report& report, const AppSpec& spec) {
  const ConfigSpace& space = spec.space();

  std::set<std::string> task_names;
  for (const tunable::TaskSpec& task : spec.tasks()) {
    if (task.name.empty()) {
      report.error(rid(rules::kEmptyName), "task", "task has no name",
                   task.where);
    } else if (!task_names.insert(task.name).second) {
      report.error(rid(rules::kDuplicateTask),
                   util::format("task '{}'", task.name),
                   "duplicate task name shadows an earlier declaration",
                   task.where);
    }
    check_references(report, task, task.params, "control parameter",
                     rules::kUndefinedParam,
                     [&](const std::string& n) {
                       return space.has_parameter(n);
                     });
    check_references(report, task, task.metrics, "metric",
                     rules::kUndefinedMetric,
                     [&](const std::string& n) {
                       return spec.metrics().has(n);
                     });
    // Resources name environment endpoints ("client.CPU"), not database
    // axes, so only structural checks apply.
    check_references(report, task, task.resources, "resource", {},
                     [](const std::string&) { return true; });
  }

  std::set<std::string> transition_names;
  for (const tunable::TransitionSpec& transition : spec.transitions()) {
    if (transition.name.empty()) {
      report.error(rid(rules::kEmptyName), "transition",
                   "transition has no name", transition.where);
    } else if (!transition_names.insert(transition.name).second) {
      report.error(rid(rules::kDuplicateTransition),
                   util::format("transition '{}'", transition.name),
                   "duplicate transition name shadows an earlier declaration",
                   transition.where);
    }
  }

  // Unused declarations only make sense once the spec declares tasks.
  if (!spec.tasks().empty()) {
    for (const tunable::ParamDomain& param : space.parameters()) {
      bool used = std::any_of(
          spec.tasks().begin(), spec.tasks().end(),
          [&](const tunable::TaskSpec& t) {
            return std::find(t.params.begin(), t.params.end(), param.name) !=
                   t.params.end();
          });
      if (!used) {
        report.warning(rid(rules::kUnusedParam),
                       util::format("parameter '{}'", param.name),
                       "declared but referenced by no task", param.where);
      }
    }
    for (const tunable::MetricDef& metric : spec.metrics().metrics()) {
      bool used = std::any_of(
          spec.tasks().begin(), spec.tasks().end(),
          [&](const tunable::TaskSpec& t) {
            return std::find(t.metrics.begin(), t.metrics.end(),
                             metric.name) != t.metrics.end();
          });
      if (!used) {
        report.warning(rid(rules::kUnusedMetric),
                       util::format("metric '{}'", metric.name),
                       "declared but updated by no task", metric.where);
      }
    }
  }

  for (const tunable::ParamDomain& param : space.parameters()) {
    std::set<int> values;
    for (int v : param.values) {
      if (!values.insert(v).second) {
        report.warning(rid(rules::kDuplicateValue),
                       util::format("parameter '{}'", param.name),
                       util::format("domain lists value {} more than once", v),
                       param.where);
      }
    }
  }
}

void lint_feasibility(Report& report, const AppSpec& spec,
                      const Options& options,
                      const std::vector<ConfigPoint>& valid) {
  const ConfigSpace& space = spec.space();
  if (space.parameter_count() == 0) {
    report.error(rid(rules::kEmptySpace), "config space",
                 "no control parameters declared; nothing to configure");
    return;
  }
  std::size_t raw = space.raw_size();
  if (raw > options.max_configs) {
    report.note(rid(rules::kSkipped), "config space",
                util::format("raw space has {} points (> max_configs {}); "
                             "feasibility and coverage rules skipped",
                             raw, options.max_configs));
    return;
  }

  if (valid.empty()) {
    report.error(
        rid(rules::kInfeasible), "config space",
        util::format("guards admit none of the {} raw configurations", raw));
    // Blame any single guard that is infeasible on its own.
    for (const tunable::Guard& guard : space.guards()) {
      bool admits = false;
      for_each_raw(space, [&](const ConfigPoint& point) {
        if (guard.predicate(point)) {
          admits = true;
          return false;
        }
        return true;
      });
      if (!admits) {
        report.error(rid(rules::kInfeasible),
                     util::format("guard '{}'", guard.description),
                     "admits no configuration on its own", guard.where);
      }
    }
    return;
  }

  // Dead domain values: declared but admitted by no valid configuration.
  std::map<std::string, std::set<int>> alive;
  for (const ConfigPoint& point : valid) {
    for (const auto& [name, value] : point.values()) alive[name].insert(value);
  }
  for (const tunable::ParamDomain& param : space.parameters()) {
    const std::set<int>& seen = alive[param.name];
    for (int v : param.values) {
      if (!seen.count(v)) {
        report.warning(
            rid(rules::kDeadValue),
            util::format("parameter '{}'", param.name),
            util::format("domain value {} appears in no valid configuration",
                         v),
            param.where);
      }
    }
    if (param.values.size() > 1 && seen.size() == 1) {
      report.warning(rid(rules::kConstantParam),
                     util::format("parameter '{}'", param.name),
                     util::format("guards pin it to the single value {}",
                                  *seen.begin()),
                     param.where);
    }
  }
}

/// Strongly-connected components of `adj` (Kosaraju, iterative).  Returns
/// the component id per node and the number of components.
std::pair<std::vector<int>, int> scc(
    const std::vector<std::vector<int>>& adj) {
  int n = static_cast<int>(adj.size());
  std::vector<std::vector<int>> radj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : adj[u]) radj[v].push_back(u);
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  for (int s = 0; s < n; ++s) {
    if (seen[s]) continue;
    // Iterative post-order DFS.
    std::vector<std::pair<int, std::size_t>> stack{{s, 0}};
    seen[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        int v = adj[u][next++];
        if (!seen[v]) {
          seen[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  std::vector<int> comp(n, -1);
  int components = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != -1) continue;
    std::vector<int> stack{*it};
    comp[*it] = components;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int v : radj[u]) {
        if (comp[v] == -1) {
          comp[v] = components;
          stack.push_back(v);
        }
      }
    }
    ++components;
  }
  return {std::move(comp), components};
}

void lint_connectivity(Report& report, const AppSpec& spec,
                       const Options& options,
                       const std::vector<ConfigPoint>& valid) {
  if (valid.size() <= 1) return;
  bool any_guard = std::any_of(
      spec.transitions().begin(), spec.transitions().end(),
      [](const tunable::TransitionSpec& t) { return bool(t.guard); });
  if (!any_guard) return;  // unguarded graph is complete
  if (valid.size() > options.max_transition_configs) {
    report.note(
        rid(rules::kSkipped), "transition graph",
        util::format("{} valid configurations (> max_transition_configs "
                     "{}); connectivity analysis skipped",
                     valid.size(), options.max_transition_configs));
    return;
  }

  int n = static_cast<int>(valid.size());
  // The steering agent consults *every* transition guard and any veto
  // cancels the change, so the edge relation is the conjunction.
  std::vector<std::vector<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      bool admitted = true;
      for (const tunable::TransitionSpec& t : spec.transitions()) {
        if (t.guard && !t.guard(valid[u], valid[v])) {
          admitted = false;
          break;
        }
      }
      if (admitted) adj[u].push_back(v);
    }
  }

  // A guarded transition that admits no pair at all vetoes every change.
  for (const tunable::TransitionSpec& t : spec.transitions()) {
    if (!t.guard) continue;
    bool admits = false;
    for (int u = 0; u < n && !admits; ++u) {
      for (int v = 0; v < n && !admits; ++v) {
        if (u != v && t.guard(valid[u], valid[v])) admits = true;
      }
    }
    if (!admits) {
      report.error(rid(rules::kAlwaysVeto),
                   util::format("transition '{}'", t.name),
                   "guard vetoes every configuration change", t.where);
    }
  }

  auto [comp, components] = scc(adj);
  if (components <= 1) return;

  // Exhibit one unreachable ordered pair.  BFS from node 0: either some
  // node is unreachable from it, or some node in another component cannot
  // reach it (otherwise they would share a component).
  std::vector<char> reached(n, 0);
  std::vector<int> queue{0};
  reached[0] = 1;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    for (int v : adj[queue[qi]]) {
      if (!reached[v]) {
        reached[v] = 1;
        queue.push_back(v);
      }
    }
  }
  int from = 0, to = 0;
  for (int v = 0; v < n; ++v) {
    if (!reached[v]) {
      from = 0;
      to = v;
      break;
    }
  }
  if (from == to) {
    for (int v = 0; v < n; ++v) {
      if (comp[v] != comp[0]) {
        from = v;
        to = 0;
        break;
      }
    }
  }
  report.error(
      rid(rules::kUnreachable), "transition graph",
      util::format("transition guards split {} valid configurations into {} "
                   "strongly-connected components; the steering agent cannot "
                   "navigate from '{}' to '{}'",
                   n, components, valid[from].key(), valid[to].key()));
}

}  // namespace

Report lint_spec(const AppSpec& spec, const Options& options) {
  Report report;
  lint_references(report, spec);
  std::vector<ConfigPoint> valid;
  if (spec.space().parameter_count() > 0 &&
      spec.space().raw_size() <= options.max_configs) {
    valid = spec.space().enumerate();
  }
  lint_feasibility(report, spec, options, valid);
  lint_connectivity(report, spec, options, valid);
  return report;
}

Report lint_preferences(const AppSpec& spec,
                        const tunable::PreferenceList& preferences,
                        const Options& options) {
  (void)options;
  Report report;
  const tunable::MetricSchema& schema = spec.metrics();
  if (preferences.empty()) {
    report.error(rid(rules::kPrefNone), "preferences",
                 "no user preference declared; the scheduler cannot rank "
                 "configurations");
    return report;
  }
  std::set<std::string> names;
  for (const tunable::UserPreference& pref : preferences) {
    std::string subject = util::format(
        "preference '{}'", pref.name.empty() ? "<unnamed>" : pref.name);
    if (!pref.name.empty() && !names.insert(pref.name).second) {
      report.warning(rid(rules::kDuplicateReference), subject,
                     "duplicate preference name", pref.where);
    }
    if (pref.objective_metric.empty()) {
      report.error(rid(rules::kPrefNoObjective), subject,
                   "no objective metric to optimize", pref.where);
    } else if (!schema.has(pref.objective_metric)) {
      report.error(rid(rules::kPrefUndefinedMetric), subject,
                   util::format("objective optimizes undeclared metric '{}'",
                                pref.objective_metric),
                   pref.where);
    } else {
      Direction dir = schema.metric(pref.objective_metric).direction;
      bool against = pref.maximize ? dir == Direction::kLowerBetter
                                   : dir == Direction::kHigherBetter;
      if (against) {
        report.warning(
            rid(rules::kPrefObjectiveDirection), subject,
            util::format("objective {} '{}', whose declared direction is "
                         "{}-better",
                         pref.maximize ? "maximizes" : "minimizes",
                         pref.objective_metric,
                         dir == Direction::kLowerBetter ? "lower" : "higher"),
            pref.where);
      }
    }
    std::set<std::string> constrained;
    for (const tunable::MetricRange& range : pref.constraints) {
      if (!schema.has(range.metric)) {
        report.error(
            rid(rules::kPrefUndefinedMetric), subject,
            util::format("constraint on undeclared metric '{}'", range.metric),
            pref.where);
        continue;
      }
      if (!constrained.insert(range.metric).second) {
        report.warning(
            rid(rules::kPrefDuplicateConstraint), subject,
            util::format("multiple constraints on metric '{}'", range.metric),
            pref.where);
      }
      if (range.min > range.max) {
        report.error(
            rid(rules::kPrefEmptyRange), subject,
            util::format("constraint on '{}' has min {} > max {}; no value "
                         "can satisfy it",
                         range.metric, range.min, range.max),
            pref.where);
      } else if (range.min == -std::numeric_limits<double>::infinity() &&
                 range.max == std::numeric_limits<double>::infinity()) {
        report.warning(
            rid(rules::kPrefVacuousConstraint), subject,
            util::format("constraint on '{}' admits every value", range.metric),
            pref.where);
      }
    }
  }
  return report;
}

Report lint_database(const AppSpec& spec, const perfdb::PerfDatabase& db,
                     const Options& options) {
  Report report;
  if (db.axes() != spec.resource_axes()) {
    report.error(
        rid(rules::kDbAxisMismatch), "database",
        util::format("database axes [{}] do not match the spec's resource "
                     "axes [{}]",
                     join(db.axes()), join(spec.resource_axes())));
  }

  // Metric schema cross-check (a CSV-loaded database may disagree with the
  // spec even though driver-built ones cannot).
  for (const tunable::MetricDef& m : spec.metrics().metrics()) {
    if (!db.schema().has(m.name)) {
      report.warning(rid(rules::kDbMetricMismatch),
                     util::format("metric '{}'", m.name),
                     "declared in the spec but absent from the database",
                     m.where);
    }
  }
  for (const tunable::MetricDef& m : db.schema().metrics()) {
    if (!spec.metrics().has(m.name)) {
      report.warning(rid(rules::kDbMetricMismatch),
                     util::format("metric '{}'", m.name),
                     "present in the database but not declared in the spec");
    }
  }

  if (db.configs().empty()) {
    report.warning(rid(rules::kDbEmpty), "database",
                   "no samples at all; every valid configuration is "
                   "unprofiled");
    return report;
  }

  db.for_each_config([&](const ConfigPoint& config) {
    if (!spec.space().valid(config)) {
      report.error(rid(rules::kDbInvalidConfig),
                   util::format("config '{}'", config.key()),
                   "database holds samples for a configuration that is not "
                   "valid in the declared space");
    }
  });

  if (spec.space().parameter_count() == 0) return report;
  if (spec.space().raw_size() > options.max_configs) {
    report.note(rid(rules::kSkipped), "database",
                util::format("raw space has {} points (> max_configs {}); "
                             "coverage analysis skipped",
                             spec.space().raw_size(), options.max_configs));
    return report;
  }
  std::size_t missing = 0;
  std::size_t predicted_only = 0;
  for (const ConfigPoint& config : spec.space().enumerate()) {
    if (db.has_config(config)) {
      // Adaptive profiling covers some configurations purely with
      // regression-tree predictions: the scheduler can select them, so they
      // are covered — but only to the model's error bound, which is worth a
      // note rather than an unprofiled warning.
      if (db.all_predicted(config)) {
        ++predicted_only;
        if (predicted_only <= options.max_unprofiled_listed) {
          report.note(rid(rules::kDbPredictedConfig),
                      util::format("config '{}'", config.key()),
                      "covered only by tree-predicted samples (adaptive "
                      "profiling); no cell was measured in the sandbox");
        }
      }
      continue;
    }
    ++missing;
    if (missing <= options.max_unprofiled_listed) {
      report.warning(rid(rules::kDbUnprofiledConfig),
                     util::format("config '{}'", config.key()),
                     "valid configuration has no profiled samples; the "
                     "scheduler can never select it");
    }
  }
  if (predicted_only > options.max_unprofiled_listed) {
    report.note(
        rid(rules::kDbPredictedConfig), "database",
        util::format("...and {} more configurations covered only by "
                     "tree-predicted samples",
                     predicted_only - options.max_unprofiled_listed));
  }
  if (missing > options.max_unprofiled_listed) {
    report.warning(
        rid(rules::kDbUnprofiledConfig), "database",
        util::format("...and {} more valid configurations without samples",
                     missing - options.max_unprofiled_listed));
  }
  return report;
}

Report lint_app(const AppSpec& spec,
                const tunable::PreferenceList* preferences,
                const perfdb::PerfDatabase* db, const Options& options) {
  Report report = lint_spec(spec, options);
  if (preferences != nullptr) {
    report.merge(lint_preferences(spec, *preferences, options));
  }
  if (db != nullptr) report.merge(lint_database(spec, *db, options));
  return report;
}

}  // namespace avf::lint

namespace avf::tunable {

lint::Report AppSpec::validate() const { return lint::lint_spec(*this); }

lint::Report AppSpec::validate(const lint::Options& options) const {
  return lint::lint_spec(*this, options);
}

}  // namespace avf::tunable
