// Determinism & concurrency source linter (the avf_srclint tool).
//
// A *lexical* analyzer over the C++ sources in src/ and tools/ that
// enforces the two contracts the compiler cannot check for us:
//
//  * the determinism contract (DESIGN.md): simulation traces, schedules and
//    viz fingerprints are byte-identical across runs and thread counts, so
//    no code on those paths may observe hash order, wall clocks, or
//    non-seeded randomness;
//  * the concurrency contract: every lock in the tree goes through the
//    Clang-TSA-annotated util::Mutex / util::MutexLock wrappers
//    (util/mutex.hpp), so raw std primitives would silently opt out of
//    -Werror=thread-safety.
//
// Rules (stable ids in rules.hpp; catalog with severities in DESIGN.md):
//
//   src.unordered-iteration  iterating an unordered_{map,set,multimap,
//                            multiset} in a trace-affecting module
//                            (src/{sim,viz,adapt,perfdb,testkit}) — bucket
//                            order varies with ASLR and libstdc++ version
//   src.wall-clock           steady_clock / system_clock outside bench/
//   src.nondet-random        std::random_device, rand()/srand(), mt19937
//                            outside util/rng.hpp and bench/ — SplitMix64
//                            (util/rng.hpp) is the only blessed source
//   src.raw-mutex            std::mutex / lock_guard / scoped_lock /
//                            unique_lock / condition_variable outside
//                            util/mutex.hpp
//   src.float-accum          `double x; ... x += e;` inside a loop in
//                            src/sim/ — floating accumulation whose result
//                            depends on summation order; use the Neumaier
//                            CompensatedSum helper or justify why the order
//                            is pinned
//
// A finding is suppressed by a directive on the offending line or the line
// directly above:
//
//   // avf-srclint: allow(<rule.id> <justification>)
//
// Suppressions themselves lint: an unknown rule id raises src.unknown-rule
// and a missing justification raises src.bad-suppression — both errors,
// and neither is suppressible.
//
// The analysis is lexical by design (no compiler, no AST): it strips
// comments and string literals, tracks which names were declared with an
// unordered/floating type in the file *and its sibling header*, and
// pattern-matches the rest.  That makes it fast, dependency-free and
// deterministic — and conservative: when it cannot prove a site is benign,
// the justification requirement on the suppression documents why a human
// believes it is.
#pragma once

#include <filesystem>
#include <string_view>
#include <vector>

#include "lint/diagnostic.hpp"

namespace avf::lint {

/// One entry of the source-rule catalog.
struct SrcRule {
  std::string_view id;        ///< stable id (rules.hpp), e.g. "src.raw-mutex"
  Severity severity;          ///< findings' severity (meta rules are errors)
  bool suppressible = true;   ///< may appear in an allow(...) directive
  std::string_view summary;   ///< one-line description (docs / --help)
};

/// The catalog, in stable order (findings and docs follow it).
const std::vector<SrcRule>& srclint_rules();

/// Lint one file.  `path` is the repo-relative path with forward slashes —
/// rule scoping keys on it (e.g. src.float-accum only applies under
/// src/sim/).  `sibling_header` optionally carries the contents of the
/// matching header so member declarations participate in the
/// unordered-container and float-accumulator name sets.
Report srclint_file(std::string_view path, std::string_view contents,
                    std::string_view sibling_header = {});

/// Scan every .hpp/.h/.cpp/.cc under `root`/src and `root`/tools, in
/// sorted path order, pairing each .cpp with its sibling header.  I/O
/// failures surface as lint.skipped notes, not exceptions.
Report srclint_tree(const std::filesystem::path& root);

}  // namespace avf::lint
