#include "lint/diagnostic.hpp"

#include <ostream>
#include <sstream>

#include "util/fmt.hpp"

namespace avf::lint {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

/// Basename of a __FILE__-style path, to keep renderings stable across
/// build trees.
std::string_view basename_of(std::string_view path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string Diagnostic::render() const {
  std::string out = util::format("{} [{}] {}: {}", severity_name(severity),
                                 rule, subject, message);
  if (where) {
    out += util::format(" ({}:{})", basename_of(where->file_name()),
                        where->line());
  }
  return out;
}

void Report::add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) ++errors_;
  if (diagnostic.severity == Severity::kWarning) ++warnings_;
  diagnostics_.push_back(std::move(diagnostic));
}

void Report::note(std::string rule, std::string subject, std::string message,
                  std::optional<std::source_location> where) {
  add(Diagnostic{Severity::kNote, std::move(rule), std::move(subject),
                 std::move(message), where});
}

void Report::warning(std::string rule, std::string subject,
                     std::string message,
                     std::optional<std::source_location> where) {
  add(Diagnostic{Severity::kWarning, std::move(rule), std::move(subject),
                 std::move(message), where});
}

void Report::error(std::string rule, std::string subject, std::string message,
                   std::optional<std::source_location> where) {
  add(Diagnostic{Severity::kError, std::move(rule), std::move(subject),
                 std::move(message), where});
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.diagnostics_) add(d);
}

bool Report::has_rule(std::string_view rule) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

void Report::print(std::ostream& out) const {
  for (const Diagnostic& d : diagnostics_) out << d.render() << '\n';
  out << util::format("{} error(s), {} warning(s)\n", errors_, warnings_);
}

void Report::print_json(std::ostream& out) const {
  out << "{\"errors\":" << errors_ << ",\"warnings\":" << warnings_
      << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out << ',';
    first = false;
    out << "{\"severity\":\"" << severity_name(d.severity) << "\",\"rule\":\""
        << json_escape(d.rule) << "\",\"subject\":\"" << json_escape(d.subject)
        << "\",\"message\":\"" << json_escape(d.message) << '"';
    if (d.where) {
      // Basename, as in render(): stable across build trees.
      out << ",\"file\":\"" << json_escape(basename_of(d.where->file_name()))
          << "\",\"line\":" << d.where->line();
    }
    out << '}';
  }
  out << "]}";
}

std::string Report::str() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += "0123456789abcdef"[(c >> 4) & 0xf];
          out += "0123456789abcdef"[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace avf::lint
