// Structured diagnostics for the tunability-spec linter (src/lint).
//
// A Diagnostic carries a severity, a stable rule id (the catalog lives in
// DESIGN.md §9 and rules.hpp), the entity it concerns, a human-readable
// message, and — when the registration DSL captured one — the
// std::source_location of the declaration the diagnostic points at.
// A Report is an ordered collection with human and JSON renderings.
#pragma once

#include <iosfwd>
#include <optional>
#include <source_location>
#include <string>
#include <vector>

namespace avf::lint {

enum class Severity {
  kNote,     // informational (e.g. an analysis was skipped)
  kWarning,  // suspicious but the application can run
  kError,    // the adaptation machinery will misbehave at run time
};

std::string_view severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string rule;     // stable id, e.g. "ref.undefined-param"
  std::string subject;  // entity, e.g. "task module1" or "config dR=80,..."
  std::string message;
  /// Registration site of the offending declaration, when known.
  std::optional<std::source_location> where;

  /// One-line human rendering:
  ///   error [ref.undefined-param] task module1: ... (app_spec.cpp:12)
  std::string render() const;
};

class Report {
 public:
  void add(Diagnostic diagnostic);
  void note(std::string rule, std::string subject, std::string message,
            std::optional<std::source_location> where = std::nullopt);
  void warning(std::string rule, std::string subject, std::string message,
               std::optional<std::source_location> where = std::nullopt);
  void error(std::string rule, std::string subject, std::string message,
             std::optional<std::source_location> where = std::nullopt);

  /// Append every diagnostic of `other`.
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// True when some diagnostic carries `rule` (test + tooling helper).
  bool has_rule(std::string_view rule) const;

  /// Human-readable listing, one diagnostic per line, plus a summary line.
  void print(std::ostream& out) const;
  /// JSON: {"errors":N,"warnings":N,"diagnostics":[{...},...]} — schema in
  /// DESIGN.md §9.  No trailing newline, so callers can embed the object.
  void print_json(std::ostream& out) const;

  /// The whole report as the human rendering (used by exceptions).
  std::string str() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

/// Escape `text` as the body of a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace avf::lint
