// Static analysis of tunability specifications.
//
// The paper's preprocessor is the only thing standing between a developer's
// tunability annotations and silent misbehavior: a task that names an
// undefined control parameter, a guard that rules out every configuration,
// or a transition graph that cannot reach a configuration the scheduler
// selects would otherwise fail only at profiling or adaptation time.  These
// passes move that whole error class to "before anything runs":
//
//   lint_spec         — reference integrity, guard feasibility, transition
//                       connectivity over the declared AppSpec
//   lint_preferences  — preference constraints vs. the declared metrics
//   lint_database     — performance-database coverage of the config space
//   lint_app          — all of the above, merged
//
// AdaptationController runs these at startup (hard-fail on errors, log
// warnings); the avf_lint CLI runs them over the example applications and
// CSV databases; CI gates on a clean lint of examples/.
#pragma once

#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"
#include "perfdb/database.hpp"
#include "tunable/app_spec.hpp"
#include "tunable/preferences.hpp"

namespace avf::lint {

struct Options {
  /// Cap on the raw (unguarded) configuration-space size for the
  /// enumeration-based rules (guard feasibility, dead values, database
  /// coverage).  Above it the rules are skipped with a `lint.skipped` note.
  std::size_t max_configs = 20000;
  /// Cap on the number of valid configurations for the O(V^2) transition
  /// connectivity analysis; above it a `lint.skipped` note is emitted.
  std::size_t max_transition_configs = 512;
  /// How many individual unprofiled configurations to list before
  /// summarizing the remainder in one diagnostic.
  std::size_t max_unprofiled_listed = 16;
};

/// Reference integrity + guard feasibility + transition connectivity.
Report lint_spec(const tunable::AppSpec& spec, const Options& options = {});

/// Preference constraints/objectives vs. the spec's metric schema.
Report lint_preferences(const tunable::AppSpec& spec,
                        const tunable::PreferenceList& preferences,
                        const Options& options = {});

/// Performance-database coverage: axes/metrics line up with the spec,
/// samples only for valid configurations, every valid configuration
/// profiled.
Report lint_database(const tunable::AppSpec& spec,
                     const perfdb::PerfDatabase& db,
                     const Options& options = {});

/// Everything: lint_spec + (optional) preferences + (optional) database.
Report lint_app(const tunable::AppSpec& spec,
                const tunable::PreferenceList* preferences,
                const perfdb::PerfDatabase* db, const Options& options = {});

}  // namespace avf::lint
