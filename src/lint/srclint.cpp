#include "lint/srclint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "lint/rules.hpp"
#include "util/fmt.hpp"

namespace avf::lint {
namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// A suppression directive as parsed from a `//` comment.  An empty rule
/// marks a comment that started with the directive prefix but did not parse.
struct Directive {
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string justification;
};

/// Source with comments and string/char-literal bodies blanked to spaces.
/// Same length as the input, newlines preserved, so offsets and line
/// numbers carry over unchanged.
struct Stripped {
  std::string code;
  std::vector<Directive> directives;
};

/// Parse one `//` comment body.  A directive must be the entire comment
/// ("code();  // avf-srclint: allow(id why)"), not embedded in prose —
/// that keeps documentation *about* the syntax from parsing as the syntax.
void parse_comment(std::string_view text, std::size_t line,
                   std::vector<Directive>& out) {
  constexpr std::string_view kPrefix = "avf-srclint:";
  std::string_view body = trim(text);
  if (!body.starts_with(kPrefix)) return;
  body = trim(body.substr(kPrefix.size()));
  Directive directive;
  directive.line = line;
  constexpr std::string_view kAllow = "allow(";
  std::size_t close = body.rfind(')');
  if (body.starts_with(kAllow) && close != std::string_view::npos &&
      close > kAllow.size()) {
    std::string_view inner =
        trim(body.substr(kAllow.size(), close - kAllow.size()));
    std::size_t split = 0;
    while (split < inner.size() &&
           !std::isspace(static_cast<unsigned char>(inner[split]))) {
      ++split;
    }
    directive.rule = std::string(inner.substr(0, split));
    directive.justification = std::string(trim(inner.substr(split)));
  }
  out.push_back(std::move(directive));
}

Stripped strip(std::string_view src) {
  Stripped result;
  result.code.reserve(src.size());
  std::size_t line = 1;
  std::size_t i = 0;
  auto blank_until = [&](std::size_t end) {
    for (; i < end && i < src.size(); ++i) {
      if (src[i] == '\n') {
        result.code.push_back('\n');
        ++line;
      } else {
        result.code.push_back(' ');
      }
    }
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = src.size();
      parse_comment(src.substr(i + 2, end - i - 2), line, result.directives);
      blank_until(end);
    } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      end = end == std::string_view::npos ? src.size() : end + 2;
      blank_until(end);
    } else if (c == '"' && i >= 1 && src[i - 1] == 'R') {
      // Raw string: R"delim( ... )delim"
      std::size_t open = src.find('(', i + 1);
      if (open == std::string_view::npos) {
        blank_until(src.size());
        break;
      }
      std::string closer = ")";
      closer += src.substr(i + 1, open - i - 1);
      closer += '"';
      std::size_t end = src.find(closer, open + 1);
      end = end == std::string_view::npos ? src.size() : end + closer.size();
      blank_until(end);
    } else if (c == '"' || (c == '\'' && (i == 0 || !is_word(src[i - 1])))) {
      // Ordinary string/char literal; the word-char guard before '\'' keeps
      // digit separators (1'000'000) out of this branch.
      char quote = c;
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != quote && src[j] != '\n') {
        if (src[j] == '\\') ++j;
        ++j;
      }
      if (j < src.size() && src[j] == quote) ++j;
      blank_until(j);
    } else {
      result.code.push_back(c);
      if (c == '\n') ++line;
      ++i;
    }
  }
  return result;
}

/// 1-based line number of `offset` given the newline positions of `code`.
class LineMap {
 public:
  explicit LineMap(std::string_view code) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] == '\n') newlines_.push_back(i);
    }
  }
  std::size_t line_of(std::size_t offset) const {
    return 1 + static_cast<std::size_t>(std::upper_bound(newlines_.begin(),
                                                         newlines_.end(),
                                                         offset) -
                                        newlines_.begin());
  }

 private:
  std::vector<std::size_t> newlines_;
};

/// True when `pat` occurs in `text` with word boundaries on whichever ends
/// of the pattern are word characters.
bool token_boundaries_ok(std::string_view text, std::size_t pos,
                         std::string_view pat) {
  if (is_word(pat.front()) && pos > 0 && is_word(text[pos - 1])) return false;
  std::size_t end = pos + pat.size();
  if (is_word(pat.back()) && end < text.size() && is_word(text[end])) {
    return false;
  }
  return true;
}

bool contains_token(std::string_view text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    if (token_boundaries_ok(text, pos, token)) return true;
    pos += 1;
  }
  return false;
}

/// Every token-boundary occurrence of `pat` in `code`, as offsets.
std::vector<std::size_t> find_token(std::string_view code,
                                    std::string_view pat) {
  std::vector<std::size_t> offsets;
  std::size_t pos = 0;
  while ((pos = code.find(pat, pos)) != std::string_view::npos) {
    if (token_boundaries_ok(code, pos, pat)) offsets.push_back(pos);
    pos += 1;
  }
  return offsets;
}

std::size_t skip_ws(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  return i;
}

/// Identifier ending at (exclusive) `end`, scanning backwards over word
/// characters; empty when `end` is not preceded by one.
std::string_view word_before(std::string_view code, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0 && is_word(code[begin - 1])) --begin;
  return code.substr(begin, end - begin);
}

/// Names declared with an unordered container type: after
/// `unordered_xxx<...>` (template arguments angle-matched) and optional
/// `&`/`*`, the next identifier is the declared name — covering members,
/// locals, parameters and functions returning unordered containers.
void collect_unordered_names(std::string_view code,
                             std::set<std::string>& names) {
  constexpr std::string_view kTypes[] = {"unordered_map", "unordered_set",
                                         "unordered_multimap",
                                         "unordered_multiset"};
  for (std::string_view type : kTypes) {
    for (std::size_t pos : find_token(code, type)) {
      std::size_t i = skip_ws(code, pos + type.size());
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) break;
      }
      if (i >= code.size()) continue;
      i = skip_ws(code, i + 1);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = skip_ws(code, i + 1);
      }
      std::size_t begin = i;
      while (i < code.size() && is_word(code[i])) ++i;
      std::string_view name = code.substr(begin, i - begin);
      if (!name.empty() &&
          std::isdigit(static_cast<unsigned char>(name.front())) == 0 &&
          name != "const") {
        names.insert(std::string(name));
      }
    }
  }
}

/// Names declared with type double/float (members, locals, parameters).
void collect_float_names(std::string_view code, std::set<std::string>& names) {
  for (std::string_view type : {std::string_view("double"),
                                std::string_view("float")}) {
    for (std::size_t pos : find_token(code, type)) {
      std::size_t i = skip_ws(code, pos + type.size());
      std::size_t begin = i;
      while (i < code.size() && is_word(code[i])) ++i;
      std::string_view name = code.substr(begin, i - begin);
      if (!name.empty() &&
          std::isdigit(static_cast<unsigned char>(name.front())) == 0 &&
          name != "const") {
        names.insert(std::string(name));
      }
    }
  }
}

struct Finding {
  std::string_view rule;
  std::size_t line;
  std::string message;
};

/// Range-for statements whose range expression names an unordered
/// container, plus explicit `name.begin()` / `name->begin()` calls.
void scan_unordered_iteration(std::string_view code, const LineMap& lines,
                              const std::set<std::string>& names,
                              std::vector<Finding>& findings) {
  if (names.empty()) return;
  for (std::size_t pos : find_token(code, "for")) {
    std::size_t open = skip_ws(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '(') ++depth;
      if (code[close] == ')' && --depth == 0) break;
    }
    if (close >= code.size()) continue;
    std::string_view inside = code.substr(open + 1, close - open - 1);
    // Top-level ':' (not '::') splits a range-for.
    int nest = 0;
    std::size_t colon = std::string_view::npos;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      char c = inside[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++nest;
      if (c == ')' || c == ']' || c == '}' || c == '>') --nest;
      if (c == ':' && nest == 0 &&
          (i == 0 || inside[i - 1] != ':') &&
          (i + 1 >= inside.size() || inside[i + 1] != ':')) {
        colon = i;
        break;
      }
    }
    if (colon == std::string_view::npos) continue;
    std::string_view range = inside.substr(colon + 1);
    for (const std::string& name : names) {
      if (contains_token(range, name)) {
        findings.push_back(
            {rules::kSrcUnorderedIter, lines.line_of(pos),
             util::format("range-for over unordered container '{}': bucket "
                          "order is not deterministic across runs; iterate "
                          "a sorted copy or an ordered sibling structure",
                          name)});
        break;
      }
    }
  }
  for (std::string_view member : {std::string_view("begin"),
                                  std::string_view("cbegin"),
                                  std::string_view("rbegin")}) {
    for (std::size_t pos : find_token(code, member)) {
      std::size_t after = skip_ws(code, pos + member.size());
      if (after >= code.size() || code[after] != '(') continue;
      std::string_view owner;
      if (pos >= 1 && code[pos - 1] == '.') {
        owner = word_before(code, pos - 1);
      } else if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>') {
        owner = word_before(code, pos - 2);
      } else {
        continue;
      }
      if (names.contains(std::string(owner))) {
        findings.push_back(
            {rules::kSrcUnorderedIter, lines.line_of(pos),
             util::format("iterator over unordered container '{}': bucket "
                          "order is not deterministic across runs",
                          owner)});
      }
    }
  }
}

/// Simple token-presence rules (wall clock, randomness, raw mutexes).
void scan_patterns(std::string_view code, const LineMap& lines,
                   std::string_view rule,
                   const std::vector<std::string_view>& patterns,
                   std::string_view message, std::vector<Finding>& findings) {
  std::set<std::size_t> seen_lines;
  for (std::string_view pat : patterns) {
    for (std::size_t pos : find_token(code, pat)) {
      std::size_t line = lines.line_of(pos);
      if (!seen_lines.insert(line).second) continue;
      findings.push_back(
          {rule, line, util::format("{} — {}", pat, message)});
    }
  }
}

/// rand()/srand() need the call parenthesis to avoid flagging identifiers
/// that merely contain the substring.
void scan_rand_calls(std::string_view code, const LineMap& lines,
                     std::vector<Finding>& findings) {
  for (std::string_view fn : {std::string_view("rand"),
                              std::string_view("srand")}) {
    for (std::size_t pos : find_token(code, fn)) {
      std::size_t after = skip_ws(code, pos + fn.size());
      if (after < code.size() && code[after] == '(') {
        findings.push_back(
            {rules::kSrcNondetRandom, lines.line_of(pos),
             util::format("{}() — C library randomness is unseeded global "
                          "state; use util::SplitMix64 (util/rng.hpp)",
                          fn)});
      }
    }
  }
}

/// `name += expr` / `name -= expr` inside a loop where `name` was declared
/// double/float.  Loop bodies are tracked lexically: a brace opened after
/// for/while is a loop region; a single-statement body extends to the
/// terminating ';'.
void scan_float_accum(std::string_view code, const LineMap& lines,
                      const std::set<std::string>& names,
                      std::vector<Finding>& findings) {
  if (names.empty()) return;
  std::vector<bool> brace_is_loop;
  bool pending_loop = false;  // saw for/while; waiting for its body
  int pending_parens = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    if (is_word(c)) {
      std::size_t begin = i;
      while (i < code.size() && is_word(code[i])) ++i;
      std::string_view word = code.substr(begin, i - begin);
      if ((word == "for" || word == "while") &&
          (begin == 0 || !is_word(code[begin - 1]))) {
        pending_loop = true;
        pending_parens = 0;
      }
      --i;
      continue;
    }
    if (c == '(' && pending_loop) ++pending_parens;
    if (c == ')' && pending_loop) --pending_parens;
    if (c == '{') {
      brace_is_loop.push_back(pending_loop && pending_parens == 0);
      if (pending_loop && pending_parens == 0) pending_loop = false;
      continue;
    }
    if (c == '}') {
      if (!brace_is_loop.empty()) brace_is_loop.pop_back();
      continue;
    }
    if (c == ';' && pending_loop && pending_parens == 0) {
      pending_loop = false;  // single-statement loop body ended
      continue;
    }
    if ((c == '+' || c == '-') && i + 1 < code.size() &&
        code[i + 1] == '=' && (i + 2 >= code.size() || code[i + 2] != '=')) {
      bool in_loop =
          pending_loop ||
          std::find(brace_is_loop.begin(), brace_is_loop.end(), true) !=
              brace_is_loop.end();
      if (!in_loop) continue;
      std::size_t end = i;
      while (end > 0 && is_space(code[end - 1])) --end;
      std::string_view target = word_before(code, end);
      if (!target.empty() && names.contains(std::string(target))) {
        std::string_view op = c == '+' ? "+=" : "-=";
        findings.push_back(
            {rules::kSrcFloatAccum, lines.line_of(i),
             util::format("'{} {}' accumulates floating point in a loop: "
                          "the result depends on summation order; use the "
                          "Neumaier CompensatedSum helper or justify why "
                          "the order is pinned",
                          target, op)});
      }
      ++i;  // skip '='
    }
  }
}

bool starts_with_any(std::string_view path,
                     std::initializer_list<std::string_view> prefixes) {
  for (std::string_view prefix : prefixes) {
    if (path.starts_with(prefix)) return true;
  }
  return false;
}

/// Per-rule path scoping (paths are repo-relative, forward slashes).
bool rule_applies(std::string_view rule, std::string_view path) {
  if (rule == rules::kSrcUnorderedIter) {
    return starts_with_any(path, {"src/sim/", "src/viz/", "src/adapt/",
                                  "src/perfdb/", "src/testkit/"});
  }
  if (rule == rules::kSrcWallClock) {
    return !starts_with_any(path, {"bench/"});
  }
  if (rule == rules::kSrcNondetRandom) {
    return path != "src/util/rng.hpp" && !starts_with_any(path, {"bench/"});
  }
  if (rule == rules::kSrcRawMutex) {
    return path != "src/util/mutex.hpp";
  }
  if (rule == rules::kSrcFloatAccum) {
    return starts_with_any(path, {"src/sim/"});
  }
  return true;  // meta rules apply wherever a directive appears
}

const SrcRule* find_rule(std::string_view id) {
  for (const SrcRule& rule : srclint_rules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

std::string known_rule_list() {
  std::string out;
  for (const SrcRule& rule : srclint_rules()) {
    if (!rule.suppressible) continue;
    if (!out.empty()) out += ", ";
    out += rule.id;
  }
  return out;
}

}  // namespace

const std::vector<SrcRule>& srclint_rules() {
  static const std::vector<SrcRule> kRules = {
      {rules::kSrcUnorderedIter, Severity::kWarning, true,
       "unordered-container iteration in a trace-affecting module "
       "(src/{sim,viz,adapt,perfdb,testkit})"},
      {rules::kSrcWallClock, Severity::kWarning, true,
       "wall-clock time source (steady_clock/system_clock) outside bench/"},
      {rules::kSrcNondetRandom, Severity::kWarning, true,
       "non-seeded randomness outside util/rng.hpp and bench/"},
      {rules::kSrcRawMutex, Severity::kWarning, true,
       "raw std synchronization primitive bypassing the TSA-annotated "
       "util::Mutex wrappers"},
      {rules::kSrcFloatAccum, Severity::kWarning, true,
       "floating-point loop accumulation in src/sim/ without the Neumaier "
       "helpers"},
      {rules::kSrcUnknownRule, Severity::kError, false,
       "suppression directive names an unknown rule"},
      {rules::kSrcBadSuppression, Severity::kError, false,
       "malformed suppression directive or missing justification"},
  };
  return kRules;
}

Report srclint_file(std::string_view path, std::string_view contents,
                    std::string_view sibling_header) {
  Report report;
  Stripped stripped = strip(contents);
  LineMap lines(stripped.code);

  std::set<std::string> unordered_names;
  std::set<std::string> float_names;
  collect_unordered_names(stripped.code, unordered_names);
  collect_float_names(stripped.code, float_names);
  if (!sibling_header.empty()) {
    Stripped sibling = strip(sibling_header);
    collect_unordered_names(sibling.code, unordered_names);
    collect_float_names(sibling.code, float_names);
  }

  auto subject = [&](std::size_t line) {
    return util::format("{}:{}", path, line);
  };

  // Validate directives first: meta diagnostics are never suppressible.
  // rule -> lines carrying a valid suppression for it
  std::map<std::string, std::set<std::size_t>> allowed;
  for (const Directive& directive : stripped.directives) {
    if (directive.rule.empty()) {
      report.error(std::string(rules::kSrcBadSuppression),
                   subject(directive.line),
                   "malformed directive; expected "
                   "avf-srclint: allow(<rule.id> <justification>)");
      continue;
    }
    const SrcRule* rule = find_rule(directive.rule);
    if (rule == nullptr) {
      report.error(std::string(rules::kSrcUnknownRule),
                   subject(directive.line),
                   util::format("unknown rule '{}' in suppression; known "
                                "rules: {}",
                                directive.rule, known_rule_list()));
      continue;
    }
    if (!rule->suppressible) {
      report.error(std::string(rules::kSrcBadSuppression),
                   subject(directive.line),
                   util::format("rule {} cannot be suppressed",
                                directive.rule));
      continue;
    }
    if (directive.justification.empty()) {
      report.error(std::string(rules::kSrcBadSuppression),
                   subject(directive.line),
                   util::format("suppression of {} needs a justification: "
                                "allow({} <why this site is sound>)",
                                directive.rule, directive.rule));
      continue;
    }
    allowed[directive.rule].insert(directive.line);
  }

  std::vector<Finding> findings;
  if (rule_applies(rules::kSrcUnorderedIter, path)) {
    scan_unordered_iteration(stripped.code, lines, unordered_names,
                             findings);
  }
  if (rule_applies(rules::kSrcWallClock, path)) {
    scan_patterns(stripped.code, lines, rules::kSrcWallClock,
                  {"steady_clock", "system_clock", "high_resolution_clock"},
                  "wall-clock time is nondeterministic; simulated time "
                  "comes from sim::Simulator::now()",
                  findings);
  }
  if (rule_applies(rules::kSrcNondetRandom, path)) {
    scan_patterns(stripped.code, lines, rules::kSrcNondetRandom,
                  {"random_device", "mt19937", "default_random_engine",
                   "minstd_rand", "random_shuffle"},
                  "non-seeded/engine randomness breaks replayability; use "
                  "util::SplitMix64 (util/rng.hpp)",
                  findings);
    scan_rand_calls(stripped.code, lines, findings);
  }
  if (rule_applies(rules::kSrcRawMutex, path)) {
    scan_patterns(
        stripped.code, lines, rules::kSrcRawMutex,
        {"std::mutex", "std::recursive_mutex", "std::timed_mutex",
         "std::shared_mutex", "std::shared_timed_mutex", "std::lock_guard",
         "std::scoped_lock", "std::unique_lock", "std::shared_lock",
         "std::condition_variable", "std::call_once", "std::once_flag"},
        "raw std primitive is invisible to -Werror=thread-safety; use "
        "util::Mutex / util::MutexLock (util/mutex.hpp)",
        findings);
  }
  if (rule_applies(rules::kSrcFloatAccum, path)) {
    scan_float_accum(stripped.code, lines, float_names, findings);
  }

  // Stable output order: by line, then catalog order.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  for (const Finding& finding : findings) {
    auto it = allowed.find(std::string(finding.rule));
    if (it != allowed.end() &&
        (it->second.contains(finding.line) ||
         (finding.line > 1 && it->second.contains(finding.line - 1)))) {
      continue;  // suppressed at the line or the line above
    }
    const SrcRule* rule = find_rule(finding.rule);
    Diagnostic diagnostic;
    diagnostic.severity = rule != nullptr ? rule->severity
                                          : Severity::kWarning;
    diagnostic.rule = std::string(finding.rule);
    diagnostic.subject = subject(finding.line);
    diagnostic.message = finding.message;
    report.add(std::move(diagnostic));
  }
  return report;
}

Report srclint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  Report report;
  std::vector<std::string> files;  // repo-relative, forward slashes
  for (std::string_view sub : {std::string_view("src"),
                               std::string_view("tools")}) {
    fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".cpp" ||
          ext == ".cc") {
        files.push_back(fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  // Directory iteration order is unspecified; sort for a stable report.
  std::sort(files.begin(), files.end());
  std::set<std::string> file_set(files.begin(), files.end());

  auto read_file = [&](const std::string& rel,
                       std::string& out) -> bool {
    std::ifstream in(root / fs::path(rel));
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
  };

  for (const std::string& rel : files) {
    std::string contents;
    if (!read_file(rel, contents)) {
      report.note(std::string(rules::kSkipped), rel, "cannot read file");
      continue;
    }
    std::string sibling;
    std::size_t dot = rel.rfind('.');
    std::string_view ext = std::string_view(rel).substr(dot);
    if (ext == ".cpp" || ext == ".cc") {
      for (std::string_view header_ext : {std::string_view(".hpp"),
                                          std::string_view(".h")}) {
        std::string candidate = rel.substr(0, dot) + std::string(header_ext);
        if (file_set.contains(candidate) && read_file(candidate, sibling)) {
          break;
        }
      }
    }
    report.merge(srclint_file(rel, contents, sibling));
  }
  return report;
}

}  // namespace avf::lint
