// Deterministic event-trace recorder for the fault-injection harness.
//
// Every observable the harness cares about — fault applications, task
// completions, adaptation decisions, steering applies, monitor probes — is
// recorded as one line carrying the simulated time in exact bit form
// (hex of the IEEE-754 pattern, never a rounded decimal).  Two runs of the
// same seeded scenario must therefore produce byte-identical traces; any
// divergence is a determinism bug in the simulator or the harness, which is
// precisely what the golden-trace replay test checks end to end.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace avf::testkit {

/// Exact textual form of a double: hex of its bit pattern.  Bit-identical
/// values — and only those — render identically.
std::string bits(double v);

class TraceRecorder {
 public:
  /// Append one line: "<time-bits> <kind> <detail>".
  void record(sim::SimTime time, const std::string& kind,
              const std::string& detail);

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t size() const { return lines_.size(); }

  /// FNV-1a 64 over all lines (with separators) — a compact fingerprint for
  /// golden comparison and for printing alongside a failing seed.
  std::uint64_t fingerprint() const;

  /// One line per record, '\n'-separated (for diffs on mismatch).
  std::string dump() const;
  void dump(std::ostream& out) const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace avf::testkit
