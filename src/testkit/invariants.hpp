// Machine-checkable adaptation invariants (the paper's §6–§7 claims, made
// assertable during any simulated run):
//
//  1. Steering discipline — a configuration change is installed only inside
//     a marked task boundary (the annotated transition points), never
//     mid-task (TransitionPointChecker).
//  2. Preference order — every adaptation decision's chosen configuration
//     satisfies the constraints of the preference it claims, and no more
//     preferred preference was satisfiable at the estimates used; a
//     best-effort decision is legal only when nothing satisfies any
//     preference (check_adaptation_events).
//  3. Monitor accuracy — once the injected ground truth has been stable for
//     a full window (plus a settle guard covering measurement spans) and no
//     mailbox fault pollutes the window, the monitoring agent's estimate is
//     within a bounded relative error of the truth (MonitorAccuracyChecker).
//  4. Re-convergence — within K check intervals (plus one window) after the
//     last fault clears, adaptation stops and the active configuration is a
//     fixed point of the scheduler at the true resources
//     (check_reconvergence).
//
// Violations are collected, not thrown: a soak run reports every broken
// invariant with its simulated time and detail, alongside the seed.
#pragma once

#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/preferences.hpp"
#include "adapt/scheduler.hpp"
#include "adapt/steering.hpp"
#include "perfdb/database.hpp"
#include "sim/simulator.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/trace.hpp"

namespace avf::testkit {

struct Violation {
  sim::SimTime time = 0.0;
  std::string invariant;
  std::string detail;
};

class InvariantLog {
 public:
  void report(sim::SimTime time, std::string invariant, std::string detail);

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  /// Human-readable digest, at most `max_lines` violations.
  std::string summary(std::size_t max_lines = 10) const;

 private:
  std::vector<Violation> violations_;
};

/// Invariant 1.  The application marks its transition points with
/// enter_boundary()/leave_boundary(); the checker hooks the steering
/// agent's on_applied acknowledgment and flags any apply outside a
/// boundary.  Owns the steering agent's on_applied slot while alive.
class TransitionPointChecker {
 public:
  TransitionPointChecker(sim::Simulator& sim, adapt::SteeringAgent& steering,
                         InvariantLog& log, TraceRecorder* trace = nullptr);
  ~TransitionPointChecker();

  TransitionPointChecker(const TransitionPointChecker&) = delete;
  TransitionPointChecker& operator=(const TransitionPointChecker&) = delete;

  void enter_boundary() { in_boundary_ = true; }
  void leave_boundary() { in_boundary_ = false; }

  std::size_t applies_seen() const { return applies_; }

 private:
  sim::Simulator& sim_;
  adapt::SteeringAgent& steering_;
  InvariantLog& log_;
  TraceRecorder* trace_;
  bool in_boundary_ = false;
  std::size_t applies_ = 0;
};

/// Invariant 2, checked post-run over the controller's event log.
/// `lookup` must match the scheduler's prediction mode.
void check_adaptation_events(
    const std::vector<adapt::AdaptationController::AdaptationEvent>& events,
    const perfdb::PerfDatabase& db, const adapt::PreferenceList& preferences,
    InvariantLog& log, perfdb::Lookup lookup = perfdb::Lookup::kInterpolate);

/// Invariant 3, probed periodically by the scenario runner.
class MonitorAccuracyChecker {
 public:
  struct Options {
    double tolerance = 0.10;      ///< relative error bound (plus noise)
    double window = 2.0;          ///< the monitor's sliding window
    double settle = 2.0;          ///< extra guard for measurement spans
  };

  MonitorAccuracyChecker(sim::Simulator& sim,
                         const adapt::MonitoringAgent& monitor,
                         const FaultInjector& injector, InvariantLog& log,
                         Options options);

  /// Check both axes at the current time if their gates pass.
  void probe();

  /// Number of (axis, probe) accuracy comparisons actually performed.
  std::size_t checked() const { return checked_; }

 private:
  void check_axis(const std::string& axis, double truth,
                  sim::SimTime stable_since, bool gated_on_mailbox);

  sim::Simulator& sim_;
  const adapt::MonitoringAgent& monitor_;
  const FaultInjector& injector_;
  InvariantLog& log_;
  Options options_;
  std::size_t checked_ = 0;
};

/// Invariant 4, checked once after the run drains.  Skipped (no violation)
/// when the run ended before the grace period elapsed.
void check_reconvergence(
    sim::SimTime end_time, const FaultInjector& injector,
    const adapt::ResourceScheduler& scheduler,
    const adapt::SteeringAgent& steering,
    const std::vector<adapt::AdaptationController::AdaptationEvent>& events,
    double monitor_window, double check_interval, int k_checks,
    InvariantLog& log);

}  // namespace avf::testkit
