#include "testkit/trace.hpp"

#include <bit>
#include <ostream>

#include "util/fmt.hpp"

namespace avf::testkit {

std::string bits(double v) {
  return util::format("{:x}", std::bit_cast<std::uint64_t>(v));
}

void TraceRecorder::record(sim::SimTime time, const std::string& kind,
                           const std::string& detail) {
  lines_.push_back(util::format("{} {} {}", bits(time), kind, detail));
}

std::uint64_t TraceRecorder::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  };
  for (const std::string& line : lines_) {
    for (char c : line) mix(c);
    mix('\n');
  }
  return h;
}

std::string TraceRecorder::dump() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void TraceRecorder::dump(std::ostream& out) const {
  for (const std::string& line : lines_) out << line << '\n';
}

}  // namespace avf::testkit
