#include "testkit/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::testkit {

namespace {

/// Trailing time a fault's effect can outlive its window: held mailbox
/// deliveries deposit up to `value` late; a competing busy loop finishes
/// its in-flight compute chunk (~20 ms) after the flag clears.
double effect_tail(const Fault& f) {
  switch (f.kind) {
    case FaultKind::kMailboxDelay:
      return f.value;
    case FaultKind::kCpuSteal:
      return 0.05;
    default:
      return 0.0;
  }
}

bool active_at(const Fault& f, sim::SimTime t) {
  return t >= f.at && t < f.until;
}

bool overlaps(const Fault& f, sim::SimTime from, sim::SimTime to,
              double tail) {
  return f.at <= to && f.until + tail >= from;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkBandwidth: return "link_bandwidth";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kLinkPartition: return "link_partition";
    case FaultKind::kCpuShare: return "cpu_share";
    case FaultKind::kCpuSteal: return "cpu_steal";
    case FaultKind::kMailboxDelay: return "mailbox_delay";
    case FaultKind::kMailboxDrop: return "mailbox_drop";
    case FaultKind::kMonitorNoise: return "monitor_noise";
  }
  return "?";
}

std::string Fault::describe() const {
  return util::format("{}[{}..{} value={} period={}]", to_string(kind),
                      bits(at), bits(until), value, period);
}

sim::SimTime FaultSchedule::clear_time() const {
  sim::SimTime t = 0.0;
  for (const Fault& f : faults) {
    t = std::max(t, f.until + effect_tail(f));
  }
  return t;
}

FaultSchedule random_schedule(std::uint64_t seed,
                              const ScheduleLimits& limits) {
  util::SplitMix64 rng(seed);
  FaultSchedule schedule;
  int span = limits.max_faults - limits.min_faults + 1;
  int n = limits.min_faults +
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(span)));
  // Keep every effect (window + tail) inside latest_clear; tails are < 0.5.
  const double window_end = limits.latest_clear - 0.5;
  for (int i = 0; i < n; ++i) {
    Fault f;
    f.kind = static_cast<FaultKind>(rng.next_below(8));
    f.at = rng.uniform(limits.earliest, window_end - 0.4);
    double max_dur = std::min(2.0, window_end - f.at);
    f.until = f.at + rng.uniform(0.4, max_dur);
    switch (f.kind) {
      case FaultKind::kLinkBandwidth:
        f.value = rng.uniform(0.06, 0.25) * limits.nominal_bandwidth;
        break;
      case FaultKind::kLinkFlap:
        f.value = rng.uniform(0.08, 0.3) * limits.nominal_bandwidth;
        f.period = rng.uniform(0.15, 0.4);
        break;
      case FaultKind::kLinkPartition:
        f.value = 100.0;  // effectively severed, but the fluid stays live
        f.until = std::min(f.until, f.at + 0.6);
        break;
      case FaultKind::kCpuShare:
        f.value = rng.uniform(0.15, 0.5);
        break;
      case FaultKind::kCpuSteal:
        // Above 0.5 the equal-weight water-fill pins the victim at half the
        // CPU — enough to violate the interactive response bound at q=4.
        f.value = rng.uniform(0.35, 0.75);
        break;
      case FaultKind::kMailboxDelay:
        f.value = rng.uniform(0.05, 0.35);
        break;
      case FaultKind::kMailboxDrop:
        f.value = rng.uniform(0.2, 0.6);
        break;
      case FaultKind::kMonitorNoise:
        f.value = rng.uniform(0.05, 0.2);
        break;
    }
    schedule.faults.push_back(f);
  }
  return schedule;
}

FaultInjector::FaultInjector(Targets targets, std::uint64_t seed,
                             TraceRecorder* trace)
    : targets_(targets), rng_(seed), trace_(trace) {
  if (targets_.sim == nullptr) {
    throw std::invalid_argument("fault injector needs a simulator");
  }
  if (targets_.link != nullptr) {
    nominal_bandwidth_ = targets_.link->bandwidth();
  }
  if (targets_.inbound != nullptr) {
    targets_.inbound->set_delivery_fault(
        [this](const sim::Message& msg) { return delivery_verdict(msg); });
  }
}

FaultInjector::~FaultInjector() {
  if (targets_.inbound != nullptr) {
    targets_.inbound->set_delivery_fault(nullptr);
  }
}

void FaultInjector::note(const char* kind, const std::string& detail) {
  ++actions_;
  if (trace_ != nullptr) {
    trace_->record(targets_.sim->now(), kind, detail);
  }
}

void FaultInjector::apply_bandwidth(double bps, const char* why) {
  targets_.link->set_bandwidth(bps);
  bw_changed_ = targets_.sim->now();
  note("fault", util::format("{} bandwidth={}", why, bits(bps)));
}

void FaultInjector::apply_cpu_share(double share, const char* why) {
  targets_.victim->set_cpu_share(share);
  cpu_changed_ = targets_.sim->now();
  note("fault", util::format("{} cpu_share={}", why, bits(share)));
}

void FaultInjector::start_steal(const Fault& fault,
                                const std::shared_ptr<bool>& on) {
  if (steal_active_) {
    note("fault", "cpu_steal skipped (steal already active)");
    return;
  }
  *on = true;
  steal_active_ = true;
  steal_share_ = fault.value;
  cpu_changed_ = targets_.sim->now();
  targets_.competitor->set_cpu_share(fault.value);
  sandbox::Sandbox* box = targets_.competitor;
  double chunk = 0.02 * box->host().cpu_speed() * fault.value;
  targets_.sim->spawn([](sandbox::Sandbox* b, std::shared_ptr<bool> running,
                         double ops) -> sim::Task<> {
    while (*running) co_await b->compute(ops);
  }(box, on, chunk));
  note("fault", util::format("cpu_steal start share={}", bits(fault.value)));
}

void FaultInjector::stop_steal(const Fault& fault,
                               const std::shared_ptr<bool>& on) {
  if (!*on) return;  // this steal never started (was skipped)
  *on = false;
  steal_active_ = false;
  steal_share_ = 0.0;
  cpu_changed_ = targets_.sim->now();
  note("fault", util::format("cpu_steal end share={}", bits(fault.value)));
}

void FaultInjector::arm(const FaultSchedule& schedule) {
  armed_.insert(armed_.end(), schedule.faults.begin(), schedule.faults.end());
  clear_time_ = std::max(clear_time_, schedule.clear_time());
  sim::Simulator& sim = *targets_.sim;
  for (const Fault& f : schedule.faults) {
    switch (f.kind) {
      case FaultKind::kLinkBandwidth:
      case FaultKind::kLinkPartition: {
        if (targets_.link == nullptr) break;
        double low = f.value;
        sim.schedule_at(f.at, [this, low] {
          apply_bandwidth(low, "link_set");
        });
        sim.schedule_at(f.until, [this] {
          apply_bandwidth(nominal_bandwidth_, "link_restore");
        });
        break;
      }
      case FaultKind::kLinkFlap: {
        if (targets_.link == nullptr) break;
        bool down = true;
        for (sim::SimTime t = f.at; t < f.until; t += f.period) {
          double level = down ? f.value : nominal_bandwidth_;
          sim.schedule_at(t, [this, level] {
            apply_bandwidth(level, "link_flap");
          });
          down = !down;
        }
        sim.schedule_at(f.until, [this] {
          apply_bandwidth(nominal_bandwidth_, "link_restore");
        });
        break;
      }
      case FaultKind::kCpuShare: {
        if (targets_.victim == nullptr) break;
        double share = f.value;
        sim.schedule_at(f.at, [this, share] {
          apply_cpu_share(share, "cpu_cap");
        });
        sim.schedule_at(f.until, [this] {
          apply_cpu_share(1.0, "cpu_restore");
        });
        break;
      }
      case FaultKind::kCpuSteal: {
        if (targets_.competitor == nullptr) break;
        auto on = std::make_shared<bool>(false);
        Fault fault = f;
        sim.schedule_at(f.at, [this, fault, on] { start_steal(fault, on); });
        sim.schedule_at(f.until, [this, fault, on] { stop_steal(fault, on); });
        break;
      }
      case FaultKind::kMailboxDelay:
      case FaultKind::kMailboxDrop:
      case FaultKind::kMonitorNoise:
        // Window faults consulted at effect time (delivery_verdict /
        // perturb); nothing to schedule, but note the window for the trace.
        if (trace_ != nullptr) {
          sim.schedule_at(f.at, [this, f] {
            note("fault", util::format("{} start value={}", to_string(f.kind),
                                       bits(f.value)));
          });
        }
        break;
    }
  }
}

double FaultInjector::true_cpu_share() const {
  double cap = targets_.victim != nullptr ? targets_.victim->cpu_share() : 1.0;
  double steal = steal_active_ ? steal_share_ : 0.0;
  if (steal <= 0.0) return cap;
  // Two equal-weight consumers on one CPU: under-load gives everyone its
  // cap; over-subscription water-fills at 0.5 each, spilling a capped
  // competitor's slack to the victim.
  if (cap + steal <= 1.0) return cap;
  if (steal < 0.5) return std::min(cap, 1.0 - steal);
  if (cap < 0.5) return cap;
  return 0.5;
}

double FaultInjector::true_bandwidth() const {
  return targets_.link != nullptr ? targets_.link->bandwidth()
                                  : nominal_bandwidth_;
}

bool FaultInjector::mailbox_disturbed_in(sim::SimTime from,
                                         sim::SimTime to) const {
  for (const Fault& f : armed_) {
    if (f.kind != FaultKind::kMailboxDelay && f.kind != FaultKind::kMailboxDrop)
      continue;
    if (overlaps(f, from, to, effect_tail(f))) return true;
  }
  return false;
}

double FaultInjector::max_noise_in(sim::SimTime from, sim::SimTime to) const {
  double amp = 0.0;
  for (const Fault& f : armed_) {
    if (f.kind != FaultKind::kMonitorNoise) continue;
    if (overlaps(f, from, to, 0.0)) amp = std::max(amp, f.value);
  }
  return amp;
}

double FaultInjector::perturb(const std::string& axis, double value) {
  sim::SimTime now = targets_.sim->now();
  for (const Fault& f : armed_) {
    if (f.kind == FaultKind::kMonitorNoise && active_at(f, now)) {
      double scaled = value * (1.0 + rng_.uniform(-f.value, f.value));
      if (trace_ != nullptr) {
        trace_->record(now, "noise",
                       util::format("{} {} -> {}", axis, bits(value),
                                    bits(scaled)));
      }
      return scaled;
    }
  }
  return value;
}

std::optional<sim::DeliveryFault> FaultInjector::delivery_verdict(
    const sim::Message& msg) {
  sim::SimTime now = targets_.sim->now();
  for (const Fault& f : armed_) {
    if (f.kind == FaultKind::kMailboxDrop && active_at(f, now)) {
      if (rng_.next_double() < f.value) {
        ++dropped_;
        if (trace_ != nullptr) {
          trace_->record(now, "drop", util::format("kind={}", msg.kind));
        }
        return sim::DeliveryFault{.drop = true};
      }
    }
  }
  for (const Fault& f : armed_) {
    if (f.kind == FaultKind::kMailboxDelay && active_at(f, now)) {
      double hold = rng_.uniform(0.0, f.value);
      ++delayed_;
      if (trace_ != nullptr) {
        trace_->record(now, "hold",
                       util::format("kind={} extra={}", msg.kind, bits(hold)));
      }
      return sim::DeliveryFault{.extra_delay = hold};
    }
  }
  return std::nullopt;
}

}  // namespace avf::testkit
