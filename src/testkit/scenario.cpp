#include "testkit/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "adapt/scheduler.hpp"
#include "adapt/steering.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/network.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace avf::testkit {

namespace {

// Request/reply protocol message kinds.  kTimeout never crosses the wire:
// the client's retry timer posts it to its own inbox via Endpoint::inject.
constexpr int kRequest = 1;
constexpr int kReply = 2;
constexpr int kTimeout = 3;
constexpr int kShutdown = 9;

void put_u32(std::vector<std::uint8_t>& payload, std::uint32_t v) {
  payload.push_back(static_cast<std::uint8_t>(v));
  payload.push_back(static_cast<std::uint8_t>(v >> 8));
  payload.push_back(static_cast<std::uint8_t>(v >> 16));
  payload.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& payload,
                      std::size_t off) {
  return static_cast<std::uint32_t>(payload[off]) |
         static_cast<std::uint32_t>(payload[off + 1]) << 8 |
         static_cast<std::uint32_t>(payload[off + 2]) << 16 |
         static_cast<std::uint32_t>(payload[off + 3]) << 24;
}

// Payload layout (12 bytes): task_id, attempt, want (reply wire bytes).
sim::Message make_request(std::uint32_t task_id, std::uint32_t attempt,
                          std::uint32_t want) {
  sim::Message m;
  m.kind = kRequest;
  put_u32(m.payload, task_id);
  put_u32(m.payload, attempt);
  put_u32(m.payload, want);
  return m;
}

/// Everything the scenario processes share; lives on run_scenario's frame
/// for the duration of Simulator::run.
struct Ctx {
  sim::Simulator& sim;
  const ScenarioOptions& opt;
  sandbox::Sandbox& client_box;
  sandbox::Sandbox& server_box;
  sim::Endpoint& client_ep;
  sim::Endpoint& server_ep;
  adapt::MonitoringAgent& monitor;
  adapt::SteeringAgent& steering;
  adapt::AdaptationController& controller;
  FaultInjector& injector;
  TransitionPointChecker& transitions;
  MonitorAccuracyChecker& accuracy;
  TraceRecorder& trace;
  std::size_t tasks = 0;
  std::size_t retries = 0;
  std::size_t adapt_seen = 0;  // adaptation events already traced
};

sim::EventHandle arm_timeout(Ctx& ctx, std::uint32_t task_id,
                             std::uint32_t attempt, double after) {
  return ctx.sim.schedule(after, [&ep = ctx.client_ep, task_id, attempt] {
    sim::Message m;
    m.kind = kTimeout;
    put_u32(m.payload, task_id);
    put_u32(m.payload, attempt);
    ep.inject(std::move(m));
  });
}

/// The adaptive client: per task, compute under the active configuration
/// (observing CPU availability), request a reply payload from the server
/// (observing network availability from the measured transfer), then apply
/// any staged reconfiguration — the task boundary of the paper's steering
/// model.  Retries with exponential backoff survive dropped replies; stale
/// replies and stale timeout markers are discarded by (task_id, attempt).
sim::Task<> client_proc(Ctx& ctx) {
  sim::Simulator& sim = ctx.sim;
  const AppModel& model = ctx.opt.model;
  // Axis ids resolved once; the compute chunks observe per chunk and must
  // not pay the name lookup per sample.
  const std::size_t cpu_axis = ctx.monitor.axis_id("cpu_share");
  const std::size_t net_axis = ctx.monitor.axis_id("net_bps");
  std::uint32_t task_id = 0;
  while (sim.now() < ctx.opt.duration) {
    ++task_id;
    const tunable::ConfigPoint cfg = ctx.steering.active();
    const double ops = model.ops(cfg);
    const auto want = static_cast<std::uint32_t>(model.reply_bytes(cfg));

    // Compute in chunks, observing CPU availability after each — the
    // instrumented-application pattern (paper §6.1).  Chunking keeps the
    // sample cadence fine enough that a fault shorter than one task still
    // lands several unblended samples in the monitor's window.
    constexpr int kComputeChunks = 4;
    for (int chunk = 0; chunk < kComputeChunks; ++chunk) {
      const sim::SimTime t0 = sim.now();
      co_await ctx.client_box.compute(ops / kComputeChunks);
      const sim::SimTime t1 = sim.now();
      if (t1 > t0) {
        ctx.monitor.observe(
            cpu_axis,
            ctx.injector.perturb(
                "cpu_share",
                ops / kComputeChunks / (model.cpu_speed * (t1 - t0))));
      }
    }

    std::uint32_t attempt = 0;
    double timeout_s = ctx.opt.retry_timeout;
    co_await ctx.client_box.send(ctx.client_ep,
                                 make_request(task_id, attempt, want));
    sim::EventHandle timeout = arm_timeout(ctx, task_id, attempt, timeout_s);
    for (;;) {
      sim::Message msg = co_await ctx.client_ep.recv();
      if (msg.kind == kReply && get_u32(msg.payload, 0) == task_id) {
        // Any attempt's reply completes the task.
        timeout.cancel();
        const double span = msg.delivered_at - msg.sent_at - model.link_latency;
        if (span > 0.0) {
          ctx.monitor.observe(
              net_axis,
              ctx.injector.perturb(
                  "net_bps", static_cast<double>(msg.wire_size()) / span));
        }
        break;
      }
      if (msg.kind == kTimeout && get_u32(msg.payload, 0) == task_id &&
          get_u32(msg.payload, 4) == attempt) {
        ++ctx.retries;
        ++attempt;
        timeout_s *= 2.0;
        co_await ctx.client_box.send(ctx.client_ep,
                                     make_request(task_id, attempt, want));
        timeout = arm_timeout(ctx, task_id, attempt, timeout_s);
        continue;
      }
      // Stale reply or stale timeout marker from an earlier attempt: ignore.
    }
    ++ctx.tasks;
    ctx.trace.record(sim.now(), "task",
                     util::format("id={} cfg={} attempts={}", task_id,
                                  cfg.key(), attempt + 1));
    ctx.transitions.enter_boundary();
    ctx.steering.apply_pending();
    ctx.transitions.leave_boundary();
  }
  sim::Message bye;
  bye.kind = kShutdown;
  co_await ctx.client_box.send(ctx.client_ep, std::move(bye));
  ctx.controller.stop();
}

sim::Task<> server_proc(Ctx& ctx) {
  for (;;) {
    sim::Message msg = co_await ctx.server_ep.recv();
    if (msg.kind == kShutdown) co_return;
    if (msg.kind != kRequest) {
      throw std::runtime_error(
          util::format("testkit server: unexpected message kind {}", msg.kind));
    }
    co_await ctx.server_box.compute(ctx.opt.model.server_ops);
    sim::Message reply;
    reply.kind = kReply;
    reply.payload = msg.payload;  // echo (task_id, attempt, want)
    reply.wire_size_override = get_u32(msg.payload, 8);
    co_await ctx.server_box.send(ctx.server_ep, std::move(reply));
  }
}

/// Periodic harness probe: one trace line per check interval (estimates and
/// injected ground truth), newly recorded adaptation decisions, and the
/// monitor-accuracy invariant.
sim::Task<> probe_proc(Ctx& ctx) {
  const double interval = ctx.opt.controller.check_interval;
  while (ctx.sim.now() < ctx.opt.duration) {
    co_await ctx.sim.delay(interval);
    auto fmt_est = [&](const char* axis) {
      auto e = ctx.monitor.estimate(axis);
      return e ? bits(*e) : std::string("-");
    };
    ctx.trace.record(ctx.sim.now(), "probe",
                     util::format("cpu={} bw={} true_cpu={} true_bw={}",
                                  fmt_est("cpu_share"), fmt_est("net_bps"),
                                  bits(ctx.injector.true_cpu_share()),
                                  bits(ctx.injector.true_bandwidth())));
    const auto& events = ctx.controller.adaptations();
    while (ctx.adapt_seen < events.size()) {
      const auto& e = events[ctx.adapt_seen++];
      ctx.trace.record(e.time, "adapt",
                       util::format("{} -> {} pref={}", e.from.key(),
                                    e.to.key(), e.preference_index));
    }
    if (ctx.opt.check_invariants) ctx.accuracy.probe();
  }
}

}  // namespace

const tunable::AppSpec& testkit_app_spec() {
  static const tunable::AppSpec spec = [] {
    tunable::AppSpec s("testkit-pipeline");
    s.space().add_parameter("q", {1, 2, 3, 4});  // payload quality level
    s.space().add_parameter("c", {0, 1, 2});     // codec: none/lzw/bwt
    s.metrics().add("response", tunable::Direction::kLowerBetter);
    s.metrics().add("quality", tunable::Direction::kHigherBetter);
    s.add_resource_axis("cpu_share");
    s.add_resource_axis("net_bps");
    s.add_task(tunable::TaskSpec{
        .name = "pipeline",
        .params = {"q", "c"},
        .resources = {"client.CPU", "client.network"},
        .metrics = {"response", "quality"},
        .guard = nullptr,
    });
    s.add_transition(tunable::TransitionSpec{
        .name = "renegotiate-payload",
        .guard = nullptr,
        .handler = nullptr,
    });
    return s;
  }();
  return spec;
}

double AppModel::ops(const tunable::ConfigPoint& config) const {
  // Higher quality costs proportional client CPU; codecs cost extra compute
  // (lzw 1.75x, bwt 2.75x — the block sort dominates).  Sized so that CPU
  // faults (share <= 0.5) push q=4 past the interactive response bound and
  // force a quality downshift, while q=1 stays viable at the worst injected
  // share (0.15).
  const int c = config.get("c");
  const double codec_cost = c == 2 ? 2.75 : c == 1 ? 1.75 : 1.0;
  return static_cast<double>(config.get("q")) * 36e6 * codec_cost;
}

double AppModel::reply_bytes(const tunable::ConfigPoint& config) const {
  // lzw halves the payload; bwt+mtf compresses markedly harder.
  const int c = config.get("c");
  const double ratio = c == 2 ? 2.8 : c == 1 ? 2.0 : 1.0;
  return static_cast<double>(config.get("q")) * 24e3 / ratio;
}

double AppModel::response(const tunable::ConfigPoint& config, double cpu_share,
                          double net_bps) const {
  // Client compute + request wire (12B payload + framing) + server compute
  // + reply wire + two propagation delays: exactly the simulated pipeline.
  const double request_bytes =
      static_cast<double>(12 + sim::kMessageHeaderBytes);
  return ops(config) / (cpu_speed * cpu_share) + server_ops / cpu_speed +
         request_bytes / net_bps + reply_bytes(config) / net_bps +
         2.0 * link_latency;
}

perfdb::PerfDatabase build_testkit_database(const AppModel& model) {
  const tunable::AppSpec& spec = testkit_app_spec();
  perfdb::PerfDatabase db(spec.resource_axes(), spec.metrics());
  const std::vector<double> cpu_grid{0.1, 0.2, 0.4, 0.7, 1.0};
  const std::vector<double> bw_grid{50e3, 100e3, 250e3, 500e3, 1e6};
  for (const tunable::ConfigPoint& config : spec.space().enumerate()) {
    for (double s : cpu_grid) {
      for (double w : bw_grid) {
        tunable::QosVector q;
        q.set("response", model.response(config, s, w));
        q.set("quality", static_cast<double>(config.get("q")));
        db.insert(config, {s, w}, q);
      }
    }
  }
  return db;
}

adapt::PreferenceList testkit_preferences(int template_id) {
  adapt::UserPreference fast;
  fast.name = "interactive";
  fast.constraints = {{.metric = "response", .max = 0.7}};
  fast.objective_metric = "quality";
  fast.maximize = true;

  adapt::UserPreference fallback;
  fallback.objective_metric = "response";
  fallback.maximize = false;
  if (template_id == 0) {
    // Unconstrained fallback: some configuration always qualifies, so the
    // scheduler never needs its best-effort branch.
    fallback.name = "fastest";
  } else {
    // Constrained fallback: a deep enough fault leaves nothing satisfiable
    // and forces the scheduler's best-effort fall-through.
    fallback.name = "tolerable";
    fallback.constraints = {{.metric = "response", .max = 2.0}};
  }
  return {fast, fallback};
}

ScheduleLimits limits_for(const ScenarioOptions& options) {
  ScheduleLimits limits;
  limits.earliest = 0.5;
  // Leave the re-convergence grace period (one monitor window plus K check
  // intervals) and a safety margin of quiet time before the run ends.
  const double grace =
      options.monitor.window + static_cast<double>(options.reconverge_checks) *
                                   options.controller.check_interval;
  limits.latest_clear = options.duration - grace - 0.5;
  limits.nominal_bandwidth = options.model.nominal_bw;
  return limits;
}

ScenarioResult run_scenario(const FaultSchedule& schedule,
                            const ScenarioOptions& options) {
  const AppModel& model = options.model;
  ScenarioResult result;
  InvariantLog log;

  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& client_host = net.add_host("client", model.cpu_speed, 64ull << 20);
  sim::Host& server_host = net.add_host("server", model.cpu_speed, 64ull << 20);
  sim::Link& link =
      net.connect(client_host, server_host, model.nominal_bw,
                  model.link_latency);
  sim::Channel& channel = net.open_channel(link);

  sandbox::Sandbox client_box(client_host, "tk-client", {});
  sandbox::Sandbox server_box(server_host, "tk-server", {});
  // Competing load for kCpuSteal lives on the client's host; it consumes
  // CPU only while a steal fault drives its busy loop.
  sandbox::Sandbox rival_box(client_host, "tk-rival", {});
  client_box.attach_endpoint(channel.a());
  server_box.attach_endpoint(channel.b());

  FaultInjector injector({.sim = &sim,
                          .link = &link,
                          .victim = &client_box,
                          .competitor = &rival_box,
                          .inbound = &channel.a()},
                         options.injector_seed, &result.trace);

  const perfdb::PerfDatabase db = build_testkit_database(model);
  const adapt::PreferenceList prefs =
      testkit_preferences(options.preference_template);
  adapt::ResourceScheduler scheduler(
      db, prefs,
      {.lookup = perfdb::Lookup::kInterpolate,
       .switch_hysteresis = options.switch_hysteresis});
  adapt::MonitoringAgent monitor(sim, testkit_app_spec().resource_axes(),
                                 options.monitor);

  const std::vector<double> initial{injector.true_cpu_share(),
                                    injector.true_bandwidth()};
  auto d0 = scheduler.select(initial);
  if (!d0) {
    throw std::runtime_error("testkit scenario: empty performance database");
  }
  adapt::SteeringAgent steering(testkit_app_spec(), d0->config);
  adapt::AdaptationController controller(sim, scheduler, monitor, steering,
                                         options.controller);
  controller.configure(initial);
  controller.start();

  // Constructed after the initial configure: only run-time reconfigurations
  // must respect task boundaries.
  TransitionPointChecker transitions(sim, steering, log, &result.trace);
  MonitorAccuracyChecker accuracy(sim, monitor, injector, log,
                                  {.tolerance = options.accuracy_tolerance,
                                   .window = options.monitor.window,
                                   .settle = options.accuracy_settle});

  injector.arm(schedule);
  result.trace.record(0.0, "begin",
                      util::format("cfg={} seed={}", d0->config.key(),
                                   options.injector_seed));

  Ctx ctx{sim,        options,  client_box, server_box, channel.a(),
          channel.b(), monitor,  steering,   controller, injector,
          transitions, accuracy, result.trace};
  sim.spawn(server_proc(ctx));
  sim.spawn(client_proc(ctx));
  sim.spawn(probe_proc(ctx));
  sim.run();

  // Adaptations decided after the probe's final drain.
  const auto& events = controller.adaptations();
  while (ctx.adapt_seen < events.size()) {
    const auto& e = events[ctx.adapt_seen++];
    result.trace.record(e.time, "adapt",
                        util::format("{} -> {} pref={}", e.from.key(),
                                     e.to.key(), e.preference_index));
  }

  if (options.check_invariants) {
    check_adaptation_events(events, db, prefs, log);
    check_reconvergence(sim.now(), injector, scheduler, steering, events,
                        options.monitor.window,
                        options.controller.check_interval,
                        options.reconverge_checks, log);
  }

  result.violations = log.violations();
  result.tasks = ctx.tasks;
  result.retries = ctx.retries;
  result.checks = controller.checks();
  result.accuracy_probes = accuracy.checked();
  result.adaptations = events;
  result.initial_config = d0->config;
  result.final_config = steering.active();
  result.total_time = sim.now();
  result.trace.record(sim.now(), "end",
                      util::format("tasks={} retries={} adaptations={}",
                                   ctx.tasks, ctx.retries, events.size()));
  return result;
}

std::string SoakReport::summary() const {
  std::string out = util::format(
      "soak: {} scenario(s), {} task(s), {} adaptation(s), {} accuracy "
      "probe(s), {} violation(s)\n",
      scenarios, tasks, adaptations, accuracy_probes, violations.size());
  for (const auto& [seed, v] : violations) {
    out += util::format("  seed={} t={:.4f} [{}] {}\n", seed, v.time,
                        v.invariant, v.detail);
  }
  return out;
}

SoakReport run_soak(std::uint64_t base_seed, int count,
                    const ScenarioOptions& base_options) {
  util::SplitMix64 seeder(base_seed);
  SoakReport report;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = seeder.next();
    report.seeds.push_back(seed);

    ScenarioOptions opt = base_options;
    opt.injector_seed = seed;
    opt.preference_template = static_cast<int>((seed >> 8) % 2);
    const FaultSchedule schedule = random_schedule(seed, limits_for(opt));

    ScenarioResult result = run_scenario(schedule, opt);
    ++report.scenarios;
    report.tasks += result.tasks;
    report.adaptations += result.adaptations.size();
    report.accuracy_probes += result.accuracy_probes;
    for (const Violation& v : result.violations) {
      report.violations.emplace_back(seed, v);
    }
  }
  return report;
}

}  // namespace avf::testkit
