// Deterministic fault injection for the virtual testbed.
//
// A FaultSchedule is a list of timed faults — link bandwidth collapse /
// flap / partition, CPU-share caps and competing-load steals on the victim
// host, delayed/dropped/reordered mailbox deliveries, and monitor-sample
// perturbation.  Schedules are either scripted by a test or generated from
// a seed (random_schedule); in both cases every effect, including
// per-message drop decisions, is driven by SplitMix64 so a run is a pure
// function of (schedule, seed) and replays bit-identically.
//
// The FaultInjector applies a schedule through the simulator's existing
// hooks (Link::set_bandwidth, Sandbox::set_cpu_share, a competing busy-loop
// sandbox, Endpoint::set_delivery_fault) and — crucially for the invariant
// checkers — keeps the *injected ground truth* queryable at any simulated
// time: what the victim's CPU share and the link bandwidth really are right
// now, when they last changed, and which windows were polluted by mailbox
// or monitor-noise faults.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sandbox/sandbox.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "testkit/trace.hpp"
#include "util/rng.hpp"

namespace avf::testkit {

enum class FaultKind {
  kLinkBandwidth,  ///< link capacity -> `value` bps over [at, until)
  kLinkFlap,       ///< square-wave value/nominal, half-period `period`
  kLinkPartition,  ///< near-zero capacity (`value` bps) over [at, until)
  kCpuShare,       ///< victim sandbox CPU cap -> `value` over [at, until)
  kCpuSteal,       ///< competing busy loop at share `value` over [at, until)
  kMailboxDelay,   ///< inbound deliveries held U(0, `value`) s (reorders)
  kMailboxDrop,    ///< inbound deliveries dropped with probability `value`
  kMonitorNoise,   ///< observations scaled by 1 + U(-`value`, `value`)
};

const char* to_string(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kLinkBandwidth;
  sim::SimTime at = 0.0;
  sim::SimTime until = 0.0;
  double value = 0.0;
  double period = 0.0;  ///< kLinkFlap half-period only

  std::string describe() const;
};

struct FaultSchedule {
  std::vector<Fault> faults;

  /// Time by which every fault's effect has ended (mailbox holds included).
  sim::SimTime clear_time() const;
};

/// Bounds for seeded random schedules.  The defaults leave a stable tail
/// (no fault effect after `latest_clear`) long enough for the
/// re-convergence invariant to be checkable.
struct ScheduleLimits {
  sim::SimTime earliest = 0.5;
  sim::SimTime latest_clear = 5.5;
  int min_faults = 1;
  int max_faults = 4;
  double nominal_bandwidth = 1e6;  ///< bytes/s; degraded values derive from it
};

/// Seed -> schedule.  Same seed, same schedule, always.
FaultSchedule random_schedule(std::uint64_t seed,
                              const ScheduleLimits& limits = {});

class FaultInjector {
 public:
  struct Targets {
    sim::Simulator* sim = nullptr;          // required
    sim::Link* link = nullptr;              // link faults
    sandbox::Sandbox* victim = nullptr;     // kCpuShare target
    sandbox::Sandbox* competitor = nullptr; // kCpuSteal busy-load sandbox
    sim::Endpoint* inbound = nullptr;       // mailbox faults (receiving side)
  };

  /// Installs the delivery-fault hook on `targets.inbound` (if any).
  /// `seed` drives per-message drop/delay draws and monitor noise.
  FaultInjector(Targets targets, std::uint64_t seed,
                TraceRecorder* trace = nullptr);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every fault action; call once before Simulator::run.  Faults
  /// naming an absent target are recorded as skipped, not errors, so one
  /// schedule can run against differently-equipped worlds.
  void arm(const FaultSchedule& schedule);

  // -- injected ground truth --------------------------------------------
  /// CPU share the victim process can actually obtain right now (its cap,
  /// water-filled against an active competing steal).
  double true_cpu_share() const;
  /// Current real link capacity, bytes/s.
  double true_bandwidth() const;
  sim::SimTime cpu_stable_since() const { return cpu_changed_; }
  sim::SimTime bandwidth_stable_since() const { return bw_changed_; }
  /// Whether any mailbox fault (including the tail of held deliveries)
  /// overlaps [from, to].
  bool mailbox_disturbed_in(sim::SimTime from, sim::SimTime to) const;
  /// Largest monitor-noise amplitude active anywhere in [from, to].
  double max_noise_in(sim::SimTime from, sim::SimTime to) const;
  /// Time by which every armed fault's effect has ended.
  sim::SimTime clear_time() const { return clear_time_; }

  /// Route a monitor observation through the injector: inside an active
  /// kMonitorNoise window the value is scaled by a seeded relative error.
  double perturb(const std::string& axis, double value);

  std::size_t actions_applied() const { return actions_; }
  std::size_t messages_dropped() const { return dropped_; }
  std::size_t messages_delayed() const { return delayed_; }

 private:
  void apply_bandwidth(double bps, const char* why);
  void apply_cpu_share(double share, const char* why);
  void start_steal(const Fault& fault, const std::shared_ptr<bool>& on);
  void stop_steal(const Fault& fault, const std::shared_ptr<bool>& on);
  std::optional<sim::DeliveryFault> delivery_verdict(const sim::Message& msg);
  void note(const char* kind, const std::string& detail);

  Targets targets_;
  util::SplitMix64 rng_;
  TraceRecorder* trace_;
  std::vector<Fault> armed_;
  double nominal_bandwidth_ = 0.0;
  sim::SimTime cpu_changed_ = 0.0;
  sim::SimTime bw_changed_ = 0.0;
  sim::SimTime clear_time_ = 0.0;
  bool steal_active_ = false;
  double steal_share_ = 0.0;
  std::size_t actions_ = 0;
  std::size_t dropped_ = 0;
  std::size_t delayed_ = 0;
};

}  // namespace avf::testkit
