#include "testkit/fleet.hpp"

#include <bit>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "adapt/scheduler.hpp"
#include "adapt/steering.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tunable/config.hpp"

namespace avf::testkit {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv1a_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv1a_u64(std::uint64_t& h, std::uint64_t v) { fnv1a_bytes(h, &v, 8); }

void fnv1a_f64(std::uint64_t& h, double v) {
  fnv1a_u64(h, std::bit_cast<std::uint64_t>(v));
}

void fnv1a_str(std::uint64_t& h, const std::string& s) {
  fnv1a_u64(h, s.size());
  fnv1a_bytes(h, s.data(), s.size());
}

/// One session's complete adaptation stack.  Everything is built at the
/// session's wave-start event (not at world construction): the initial
/// automatic configuration must see the ground truth *at arrival time*.
struct Session {
  std::unique_ptr<adapt::ResourceScheduler> scheduler;
  std::unique_ptr<adapt::MonitoringAgent> monitor;
  std::unique_ptr<adapt::SteeringAgent> steering;
  std::unique_ptr<adapt::AdaptationController> controller;
  tunable::ConfigPoint initial_config;
  std::size_t cpu_axis = 0;
  std::size_t net_axis = 0;
  double end_time = 0.0;
  std::size_t tasks = 0;
  sim::EventHandle observe_event;
};

struct FleetState {
  explicit FleetState(const FleetOptions& options)
      : opt(options),
        net(sim),
        client_host(net.add_host("fleet-clients", options.model.cpu_speed,
                                 64ull << 20)),
        server_host(net.add_host("fleet-server", options.model.cpu_speed,
                                 64ull << 20)),
        link(net.connect(client_host, server_host, options.model.nominal_bw,
                         options.model.link_latency)),
        injector({.sim = &sim, .link = &link}, /*seed=*/1),
        db(build_fleet_database(options.model)),
        prefs(fleet_preferences()),
        sessions(static_cast<std::size_t>(options.sessions)) {}

  const FleetOptions& opt;
  sim::Simulator sim;
  sim::Network net;
  sim::Host& client_host;
  sim::Host& server_host;
  sim::Link& link;
  FaultInjector injector;
  const perfdb::PerfDatabase db;
  const adapt::PreferenceList prefs;
  std::vector<Session> sessions;
};

/// Task boundary: observe the shared ground truth, count the task, and give
/// the steering agent its transition point.  Reschedules itself until the
/// session's monitoring lifetime ends.
void observe_tick(FleetState& st, std::size_t idx) {
  Session& s = st.sessions[idx];
  s.monitor->observe(s.cpu_axis, st.injector.true_cpu_share());
  s.monitor->observe(s.net_axis, st.injector.true_bandwidth());
  ++s.tasks;
  s.steering->apply_pending();
  const double next = st.sim.now() + st.opt.observe_interval;
  if (next <= s.end_time) {
    s.observe_event = st.sim.schedule(st.opt.observe_interval,
                                      [&st, idx] { observe_tick(st, idx); });
  } else {
    s.observe_event = st.sim.schedule_at(s.end_time, [&st, idx] {
      st.sessions[idx].steering->apply_pending();
      st.sessions[idx].controller->stop();
    });
  }
}

void start_session(FleetState& st, std::size_t idx) {
  Session& s = st.sessions[idx];

  adapt::ResourceScheduler::Options sched_options;
  sched_options.lookup = perfdb::Lookup::kInterpolate;
  sched_options.switch_hysteresis = st.opt.switch_hysteresis;
  sched_options.exact_predictions = st.opt.exact_predictions;
  sched_options.decision_cache = st.opt.decision_cache;
  s.scheduler = std::make_unique<adapt::ResourceScheduler>(
      st.db, st.prefs, std::move(sched_options));
  s.monitor = std::make_unique<adapt::MonitoringAgent>(
      st.sim, fleet_app_spec().resource_axes(), st.opt.monitor);
  s.cpu_axis = s.monitor->axis_id("cpu_share");
  s.net_axis = s.monitor->axis_id("net_bps");

  const std::vector<double> initial{st.injector.true_cpu_share(),
                                    st.injector.true_bandwidth()};
  auto d0 = s.scheduler->select(initial);
  if (!d0) {
    throw std::runtime_error("fleet: empty performance database");
  }
  s.steering = std::make_unique<adapt::SteeringAgent>(fleet_app_spec(),
                                                      d0->config);
  // The spec/preference/database triple is identical for every session;
  // lint it once, at the first arrival.
  adapt::AdaptationController::Options copt = st.opt.controller;
  copt.validate_spec = copt.validate_spec && idx == 0;
  s.controller = std::make_unique<adapt::AdaptationController>(
      st.sim, *s.scheduler, *s.monitor, *s.steering, copt);
  s.initial_config = s.controller->configure(initial);
  s.controller->start();

  s.end_time = st.sim.now() + st.opt.session_duration;
  observe_tick(st, idx);
}

}  // namespace

const tunable::AppSpec& fleet_app_spec() {
  static const tunable::AppSpec spec = [] {
    tunable::AppSpec s("testkit-fleet");
    s.space().add_parameter("q", {1, 2, 3, 4, 5, 6, 7, 8});  // payload quality
    s.space().add_parameter("c", {0, 1, 2});                 // codec ladder
    s.space().add_parameter("r", {0, 1, 2, 3});              // refine passes
    s.metrics().add("response", tunable::Direction::kLowerBetter);
    s.metrics().add("quality", tunable::Direction::kHigherBetter);
    s.add_resource_axis("cpu_share");
    s.add_resource_axis("net_bps");
    s.add_task(tunable::TaskSpec{
        .name = "session",
        .params = {"q", "c", "r"},
        .resources = {"client.CPU", "client.network"},
        .metrics = {"response", "quality"},
        .guard = nullptr,
    });
    s.add_transition(tunable::TransitionSpec{
        .name = "retune",
        .guard = nullptr,
        .handler = nullptr,
    });
    return s;
  }();
  return spec;
}

double FleetModel::ops(const tunable::ConfigPoint& config) const {
  // Quality costs proportional CPU, codecs multiply it (lzw 1.75x, bwt
  // 2.75x), and each refinement pass adds half a base pass.  Sized so the
  // top of the space misses the interactive bound even on an idle host:
  // selection stays non-trivial at every resource point.
  const int c = config.get("c");
  const double codec_cost = c == 2 ? 2.75 : c == 1 ? 1.75 : 1.0;
  const double refine = 1.0 + 0.5 * static_cast<double>(config.get("r"));
  return static_cast<double>(config.get("q")) * 9e6 * codec_cost * refine;
}

double FleetModel::reply_bytes(const tunable::ConfigPoint& config) const {
  // lzw halves the payload, bwt compresses harder; refinement passes ship
  // extra detail coefficients.
  const int c = config.get("c");
  const double ratio = c == 2 ? 2.8 : c == 1 ? 2.0 : 1.0;
  const double refine = 1.0 + 0.25 * static_cast<double>(config.get("r"));
  return static_cast<double>(config.get("q")) * 24e3 / ratio * refine;
}

double FleetModel::response(const tunable::ConfigPoint& config,
                            double cpu_share, double net_bps) const {
  const double request_bytes =
      static_cast<double>(12 + sim::kMessageHeaderBytes);
  return ops(config) / (cpu_speed * cpu_share) + server_ops / cpu_speed +
         request_bytes / net_bps + reply_bytes(config) / net_bps +
         2.0 * link_latency;
}

double FleetModel::quality(const tunable::ConfigPoint& config) const {
  return static_cast<double>(config.get("q")) *
         (1.0 + 0.25 * static_cast<double>(config.get("r")));
}

perfdb::PerfDatabase build_fleet_database(const FleetModel& model) {
  const tunable::AppSpec& spec = fleet_app_spec();
  perfdb::PerfDatabase db(spec.resource_axes(), spec.metrics());
  const std::vector<double> cpu_grid{0.1, 0.2, 0.4, 0.7, 1.0};
  const std::vector<double> bw_grid{50e3, 100e3, 250e3, 500e3, 1e6};
  for (const tunable::ConfigPoint& config : spec.space().enumerate()) {
    for (double s : cpu_grid) {
      for (double w : bw_grid) {
        tunable::QosVector q;
        q.set("response", model.response(config, s, w));
        q.set("quality", model.quality(config));
        db.insert(config, {s, w}, q);
      }
    }
  }
  return db;
}

adapt::PreferenceList fleet_preferences() {
  adapt::UserPreference interactive;
  interactive.name = "interactive";
  interactive.constraints = {{.metric = "response", .max = 0.7}};
  interactive.objective_metric = "quality";
  interactive.maximize = true;

  adapt::UserPreference fallback;
  fallback.name = "fastest";
  fallback.objective_metric = "response";
  fallback.maximize = false;
  return {interactive, fallback};
}

FaultSchedule fleet_churn_schedule(const FleetModel& model, double duration) {
  FaultSchedule schedule;
  // An early square-wave flap (bandwidth alternating nominal/8 <-> nominal
  // every 0.45 s) keeps every live session's network estimate swinging
  // through the adaptation threshold...
  schedule.faults.push_back(Fault{.kind = FaultKind::kLinkFlap,
                                  .at = 1.0,
                                  .until = 0.4 * duration,
                                  .value = model.nominal_bw / 8.0,
                                  .period = 0.45});
  // ...and a later sustained collapse forces one more fleet-wide
  // reconfiguration plus the recovery upshift when it clears.
  schedule.faults.push_back(Fault{.kind = FaultKind::kLinkBandwidth,
                                  .at = 0.55 * duration,
                                  .until = 0.8 * duration,
                                  .value = model.nominal_bw / 4.0});
  return schedule;
}

FleetResult run_fleet(const FleetOptions& options) {
  if (options.sessions <= 0 || options.waves <= 0) {
    throw std::invalid_argument("fleet: sessions and waves must be positive");
  }
  FleetState st(options);

  // Deal sessions into contiguous wave groups and schedule each arrival.
  const std::size_t n = st.sessions.size();
  const std::size_t per_wave =
      (n + static_cast<std::size_t>(options.waves) - 1) /
      static_cast<std::size_t>(options.waves);
  for (std::size_t i = 0; i < n; ++i) {
    const double start =
        static_cast<double>(i / per_wave) * options.wave_interval;
    st.sim.schedule_at(start, [&st, i] { start_session(st, i); });
  }
  st.injector.arm(fleet_churn_schedule(options.model, options.duration));
  st.sim.run();

  FleetResult result;
  result.sessions = n;
  std::uint64_t h = kFnvOffset;
  for (const Session& s : st.sessions) {
    result.tasks += s.tasks;
    result.checks += s.controller->checks();
    result.ticks_skipped += s.controller->ticks_skipped();
    result.triggers += s.monitor->triggers();
    const auto& events = s.controller->adaptations();
    result.adaptations += events.size();

    fnv1a_str(h, s.initial_config.key());
    fnv1a_u64(h, events.size());
    for (const auto& e : events) {
      fnv1a_f64(h, e.time);
      fnv1a_str(h, e.from.key());
      fnv1a_str(h, e.to.key());
      fnv1a_u64(h, e.preference_index);
      fnv1a_u64(h, e.estimates.size());
      for (double v : e.estimates) fnv1a_f64(h, v);
    }
    fnv1a_str(h, s.steering->active().key());
    fnv1a_u64(h, s.tasks);
  }
  result.decision_fingerprint = h;
  if (options.decision_cache) result.cache = options.decision_cache->stats();
  result.total_time = st.sim.now();
  return result;
}

}  // namespace avf::testkit
