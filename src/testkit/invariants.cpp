#include "testkit/invariants.hpp"

#include <cmath>

#include "util/fmt.hpp"

namespace avf::testkit {

void InvariantLog::report(sim::SimTime time, std::string invariant,
                          std::string detail) {
  violations_.push_back(
      Violation{time, std::move(invariant), std::move(detail)});
}

std::string InvariantLog::summary(std::size_t max_lines) const {
  if (violations_.empty()) return "all invariants held";
  std::string out =
      util::format("{} invariant violation(s):\n", violations_.size());
  std::size_t shown = 0;
  for (const Violation& v : violations_) {
    if (shown++ >= max_lines) {
      out += util::format("  ... and {} more\n", violations_.size() - shown + 1);
      break;
    }
    out += util::format("  t={:.4f} [{}] {}\n", v.time, v.invariant, v.detail);
  }
  return out;
}

TransitionPointChecker::TransitionPointChecker(sim::Simulator& sim,
                                               adapt::SteeringAgent& steering,
                                               InvariantLog& log,
                                               TraceRecorder* trace)
    : sim_(sim), steering_(steering), log_(log), trace_(trace) {
  steering_.set_on_applied([this](const tunable::ConfigPoint& from,
                                  const tunable::ConfigPoint& to) {
    ++applies_;
    if (!in_boundary_) {
      log_.report(sim_.now(), "transition-point",
                  util::format("config {} -> {} applied outside a task "
                               "boundary",
                               from.key(), to.key()));
    }
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), "apply",
                     util::format("{} -> {}", from.key(), to.key()));
    }
  });
}

TransitionPointChecker::~TransitionPointChecker() {
  steering_.set_on_applied(nullptr);
}

void check_adaptation_events(
    const std::vector<adapt::AdaptationController::AdaptationEvent>& events,
    const perfdb::PerfDatabase& db, const adapt::PreferenceList& preferences,
    InvariantLog& log, perfdb::Lookup lookup) {
  // A preference is satisfiable at `estimates` when any stored config's
  // predicted quality meets its constraints.
  auto satisfiable = [&](const adapt::UserPreference& pref,
                         const perfdb::ResourcePoint& estimates) {
    bool found = false;
    db.for_each_config([&](const tunable::ConfigPoint& config) {
      if (found) return;
      auto q = db.predict(config, estimates, lookup);
      if (q && pref.satisfied_by(*q)) found = true;
    });
    return found;
  };

  for (const auto& event : events) {
    const std::size_t k = event.preference_index;
    if (k >= preferences.size()) {
      log.report(event.time, "preference-order",
                 util::format("decision names preference #{} but only {} "
                              "exist",
                              k, preferences.size()));
      continue;
    }
    auto predicted = db.predict(event.to, event.estimates, lookup);
    if (!predicted) {
      log.report(event.time, "preference-order",
                 util::format("selected config {} has no prediction at the "
                              "decision estimates",
                              event.to.key()));
      continue;
    }
    const bool claims_satisfied = preferences[k].satisfied_by(*predicted);
    if (!claims_satisfied) {
      // Legal only as a best-effort decision: last preference, and nothing
      // satisfies any preference at all.
      if (k != preferences.size() - 1) {
        log.report(event.time, "preference-order",
                   util::format("config {} violates preference #{} it was "
                                "selected under",
                                event.to.key(), k));
        continue;
      }
      bool any = false;
      for (const auto& pref : preferences) {
        if (satisfiable(pref, event.estimates)) {
          any = true;
          break;
        }
      }
      if (any) {
        log.report(event.time, "preference-order",
                   util::format("best-effort config {} chosen although a "
                                "preference was satisfiable",
                                event.to.key()));
      }
      continue;
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (satisfiable(preferences[j], event.estimates)) {
        log.report(event.time, "preference-order",
                   util::format("decision used preference #{} but more "
                                "preferred #{} was satisfiable",
                                k, j));
        break;
      }
    }
  }
}

MonitorAccuracyChecker::MonitorAccuracyChecker(
    sim::Simulator& sim, const adapt::MonitoringAgent& monitor,
    const FaultInjector& injector, InvariantLog& log, Options options)
    : sim_(sim),
      monitor_(monitor),
      injector_(injector),
      log_(log),
      options_(options) {}

void MonitorAccuracyChecker::check_axis(const std::string& axis, double truth,
                                        sim::SimTime stable_since,
                                        bool gated_on_mailbox) {
  const sim::SimTime now = sim_.now();
  const double guard = options_.window + options_.settle;
  if (now - stable_since < guard) return;
  if (gated_on_mailbox && injector_.mailbox_disturbed_in(now - guard, now)) {
    return;
  }
  auto estimate = monitor_.estimate(axis);
  if (!estimate) return;  // no samples in-window: nothing to hold to account
  const double tolerance =
      options_.tolerance + injector_.max_noise_in(now - guard, now);
  const double scale = std::max(std::abs(truth), 1e-12);
  ++checked_;
  if (std::abs(*estimate - truth) > tolerance * scale) {
    log_.report(now, "monitor-accuracy",
                util::format("{} estimate {} vs ground truth {} exceeds "
                             "relative tolerance {:.3f}",
                             axis, *estimate, truth, tolerance));
  }
}

void MonitorAccuracyChecker::probe() {
  check_axis("cpu_share", injector_.true_cpu_share(),
             injector_.cpu_stable_since(), /*gated_on_mailbox=*/false);
  check_axis("net_bps", injector_.true_bandwidth(),
             injector_.bandwidth_stable_since(), /*gated_on_mailbox=*/true);
}

void check_reconvergence(
    sim::SimTime end_time, const FaultInjector& injector,
    const adapt::ResourceScheduler& scheduler,
    const adapt::SteeringAgent& steering,
    const std::vector<adapt::AdaptationController::AdaptationEvent>& events,
    double monitor_window, double check_interval, int k_checks,
    InvariantLog& log) {
  const sim::SimTime clear = injector.clear_time();
  const sim::SimTime grace =
      monitor_window + static_cast<double>(k_checks) * check_interval;
  if (end_time < clear + grace) return;  // run too short to judge

  for (const auto& event : events) {
    if (event.time > clear + grace) {
      log.report(event.time, "re-convergence",
                 util::format("adaptation {} -> {} after the grace period "
                              "(faults cleared at {:.3f})",
                              event.from.key(), event.to.key(), clear));
    }
  }

  const perfdb::ResourcePoint truth{injector.true_cpu_share(),
                                    injector.true_bandwidth()};
  auto decision = scheduler.select_with_incumbent(truth, steering.active());
  if (!decision) {
    log.report(end_time, "re-convergence",
               "scheduler has no decision at the true resources");
    return;
  }
  if (decision->config != steering.active()) {
    log.report(end_time, "re-convergence",
               util::format("active config {} is not a fixed point: "
                            "scheduler prefers {} at true resources",
                            steering.active().key(), decision->config.key()));
  }
  if (steering.has_pending()) {
    log.report(end_time, "re-convergence",
               "a staged configuration change was never applied");
  }
}

}  // namespace avf::testkit
