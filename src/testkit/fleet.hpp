// Fleet runner: N adaptive sessions in one simulator, built to measure the
// *adaptation* hot path at scale (bench/micro_fleet).
//
// Where scenario.hpp wires one full request/reply pipeline, the fleet
// strips the application to its adaptation skeleton: every session owns a
// complete scheduler + monitor + steering + controller stack against one
// shared analytic performance database, observes the injected ground truth
// of one shared link (and its own CPU share) on a fixed cadence, and
// reconfigures at observation boundaries.  No per-session protocol traffic
// — the simulated work *is* the monitor → trigger → re-select → steer loop,
// so wall clock measures the fleet decision path and nothing else.
//
// Sessions arrive in waves.  Sessions within a wave are exact replicas on
// identical schedules: they observe the same values at the same simulated
// times, so their windowed estimates — and therefore their scheduler
// queries — are bit-identical.  With a shared adapt::DecisionCache attached
// the first session in a wave evaluates the candidate set and the rest hit
// the memo; without one, every session re-evaluates.  Both modes produce
// byte-identical decision traces (the cache is exact by construction),
// which decision_fingerprint() witnesses.
//
// Deterministic: a pure function of FleetOptions.  Same options, same
// fingerprint, at any session count, cached or not.
#pragma once

#include <cstdint>
#include <memory>

#include "adapt/controller.hpp"
#include "adapt/decision_cache.hpp"
#include "adapt/monitor.hpp"
#include "adapt/preferences.hpp"
#include "perfdb/database.hpp"
#include "testkit/fault_injector.hpp"
#include "tunable/app_spec.hpp"

namespace avf::testkit {

/// The fleet application's tunability specification: q in {1..8} (payload
/// quality), c in {0,1,2} (codec ladder), r in {0..3} (refinement passes) —
/// 96 configurations, large enough that re-evaluating the candidate set
/// dominates an uncached decision.  Metrics `response` (lower better) and
/// `quality` (higher better); resource axes cpu_share and net_bps.
const tunable::AppSpec& fleet_app_spec();

/// Closed-form cost model behind the analytic fleet database.
struct FleetModel {
  double cpu_speed = 450e6;     ///< ops/s
  double nominal_bw = 1e6;      ///< bytes/s link capacity
  double link_latency = 0.005;  ///< s, one way
  double server_ops = 1.5e6;    ///< per task

  double ops(const tunable::ConfigPoint& config) const;
  double reply_bytes(const tunable::ConfigPoint& config) const;
  double response(const tunable::ConfigPoint& config, double cpu_share,
                  double net_bps) const;
  double quality(const tunable::ConfigPoint& config) const;
};

/// Analytic performance database for fleet_app_spec() over a fixed
/// 5x5 (cpu_share x net_bps) grid: 2400 records.
perfdb::PerfDatabase build_fleet_database(const FleetModel& model = {});

/// The fleet's preference list: "interactive" (response <= 0.7 s, maximize
/// quality) with an unconstrained "fastest" fallback.
adapt::PreferenceList fleet_preferences();

/// The churn the benchmarks run under: a link flap square-wave early in the
/// run and a sustained bandwidth collapse later, both ending before
/// `duration` so the fleet re-converges.  Only link faults — the fleet's
/// injector has no victim sandbox, and absent targets are skipped.
FaultSchedule fleet_churn_schedule(const FleetModel& model, double duration);

struct FleetOptions {
  int sessions = 64;
  /// Arrival waves: sessions are dealt into `waves` contiguous groups;
  /// group w starts at w * wave_interval.  Sessions in one group are exact
  /// replicas on identical schedules.
  int waves = 8;
  double wave_interval = 0.3;     ///< s between wave starts
  double session_duration = 8.0;  ///< per-session monitoring lifetime
  /// Observation/task-boundary cadence.  Deliberately coarser than the
  /// controller's check interval so quiet ticks between observations are
  /// provable no-ops (the change-driven-tick fast path).
  double observe_interval = 0.5;
  double duration = 12.0;  ///< simulation horizon (>= last session end)
  FleetModel model{};
  adapt::MonitoringAgent::Options monitor{
      .window = 1.0, .trigger_threshold = 0.25, .consecutive_required = 2};
  adapt::AdaptationController::Options controller{.check_interval = 0.25};
  double switch_hysteresis = 0.05;
  /// Shared decision memo for every session's scheduler; null = each
  /// session evaluates the candidate set itself (the per-session baseline).
  std::shared_ptr<adapt::DecisionCache> decision_cache;
  /// Bit-exact candidate predictions (PerfDatabase::predict_uncached) even
  /// without a decision cache.  Both benchmark lanes keep this on so the
  /// cached-vs-uncached comparison is provably byte-identical; a cache
  /// forces it regardless.
  bool exact_predictions = true;
};

struct FleetResult {
  std::size_t sessions = 0;
  std::size_t tasks = 0;          ///< observation/task boundaries, summed
  std::size_t checks = 0;         ///< controller ticks, summed
  std::size_t ticks_skipped = 0;  ///< change-driven no-op ticks, summed
  std::size_t triggers = 0;       ///< monitor out-of-range firings, summed
  std::size_t adaptations = 0;    ///< config changes, summed
  /// Decision-cache counters for the run (all zero when uncached).
  adapt::DecisionCache::Stats cache;
  /// FNV-1a over every session's decision trace: initial config, each
  /// adaptation event (time/from/to/preference/estimate bits), final
  /// config, task count.  The byte-equality witness for cached-vs-uncached
  /// and run-twice determinism.
  std::uint64_t decision_fingerprint = 0;
  double total_time = 0.0;  ///< simulated seconds
};

/// Run the fleet to completion.  Deterministic: a pure function of
/// `options` (see file comment).
FleetResult run_fleet(const FleetOptions& options);

}  // namespace avf::testkit
