// ScenarioRunner: one fully-wired adaptive pipeline under fault injection.
//
// The scenario application is a synthetic request/reply pipeline (client
// computes, asks the server for a payload, measures what it actually got)
// whose cost model is closed-form — so its performance database is built
// analytically instead of profiled, and a 10-simulated-second scenario runs
// in well under a millisecond of real time.  That speed is what makes the
// seeded soak (50+ scenarios per run, every one under the full invariant
// suite) viable inside ASan/UBSan CI.
//
// Tunables: q in {1,2,3,4} (payload quality; more bytes, more client CPU)
// and c in {0,1,2} (codec: none / lzw halves bytes at 1.75x CPU / bwt
// compresses 2.8x at 2.75x CPU — same ladder as the codec library).  Metrics:
// `response` (s per task, lower better) and `quality` (= q, higher better).
// Resource axes: cpu_share, net_bps — the same two the paper's Active
// Visualization experiments vary.
//
// Every run produces a TraceRecorder whose lines carry exact time bits;
// run_scenario(schedule, options) twice must yield byte-identical traces
// (the golden-trace determinism contract), and violations of any adaptation
// invariant are returned, never thrown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/monitor.hpp"
#include "adapt/preferences.hpp"
#include "perfdb/database.hpp"
#include "testkit/fault_injector.hpp"
#include "testkit/invariants.hpp"
#include "testkit/trace.hpp"
#include "tunable/app_spec.hpp"

namespace avf::testkit {

/// The scenario application's tunability specification (see file comment).
const tunable::AppSpec& testkit_app_spec();

/// Closed-form cost model shared by the analytic performance database and
/// the simulated application itself.
struct AppModel {
  double cpu_speed = 450e6;      ///< ops/s, both hosts
  double nominal_bw = 1e6;       ///< bytes/s link capacity
  double link_latency = 0.005;   ///< s, one way
  double server_ops = 1.5e6;     ///< per request

  double ops(const tunable::ConfigPoint& config) const;
  double reply_bytes(const tunable::ConfigPoint& config) const;
  /// Predicted per-task response time at (cpu_share, net_bps).
  double response(const tunable::ConfigPoint& config, double cpu_share,
                  double net_bps) const;
};

/// Analytic performance database over a fixed resource grid.
perfdb::PerfDatabase build_testkit_database(const AppModel& model = {});

/// Preference templates: 0 = latency-constrained maximize-quality with an
/// unconstrained minimize-latency fallback; 1 = both preferences carry
/// constraints, so extreme degradation exercises the scheduler's
/// best-effort fall-through.
adapt::PreferenceList testkit_preferences(int template_id);

struct ScenarioOptions {
  double duration = 10.0;        ///< client keeps starting tasks until here
  AppModel model{};
  adapt::MonitoringAgent::Options monitor{
      .window = 1.0, .trigger_threshold = 0.25, .consecutive_required = 2};
  adapt::AdaptationController::Options controller{.check_interval = 0.25};
  double switch_hysteresis = 0.05;
  int preference_template = 0;
  std::uint64_t injector_seed = 1;  ///< per-message drop/delay/noise draws
  double retry_timeout = 1.0;       ///< initial; doubles per retry
  // Invariant-checker knobs.
  bool check_invariants = true;
  int reconverge_checks = 12;       ///< K in the re-convergence invariant
  double accuracy_tolerance = 0.10;
  double accuracy_settle = 2.0;
};

struct ScenarioResult {
  std::vector<Violation> violations;
  TraceRecorder trace;
  std::size_t tasks = 0;
  std::size_t retries = 0;
  std::size_t checks = 0;
  std::size_t accuracy_probes = 0;
  std::vector<adapt::AdaptationController::AdaptationEvent> adaptations;
  tunable::ConfigPoint initial_config;
  tunable::ConfigPoint final_config;
  double total_time = 0.0;

  bool ok() const { return violations.empty(); }
};

/// Run one scenario to completion.  Deterministic: a pure function of
/// (schedule, options).
ScenarioResult run_scenario(const FaultSchedule& schedule,
                            const ScenarioOptions& options = {});

/// Limits matching `options` so random faults clear early enough for the
/// re-convergence grace period to fit before `duration`.
ScheduleLimits limits_for(const ScenarioOptions& options);

struct SoakReport {
  std::size_t scenarios = 0;
  std::size_t tasks = 0;
  std::size_t adaptations = 0;
  std::size_t accuracy_probes = 0;
  std::vector<std::uint64_t> seeds;  ///< per-scenario seeds, in run order
  /// Violations annotated with the seed of the scenario that produced them.
  std::vector<std::pair<std::uint64_t, Violation>> violations;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Derive `count` per-scenario seeds from `base_seed` and run each random
/// scenario under the full invariant suite.  The preference template and
/// fault schedule both derive from the per-scenario seed.
SoakReport run_soak(std::uint64_t base_seed, int count,
                    const ScenarioOptions& base_options = {});

}  // namespace avf::testkit
